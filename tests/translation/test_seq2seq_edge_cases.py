"""Edge-case tests for the seq2seq translator (padding, lengths, unk)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import ParallelCorpus
from repro.translation import NMTConfig, Seq2SeqTranslator

TINY = NMTConfig(
    embedding_size=8,
    hidden_size=10,
    num_layers=1,
    dropout=0.0,
    training_steps=40,
    batch_size=4,
    seed=0,
)


@pytest.fixture(scope="module")
def variable_length_model():
    """Corpus with sentences of different lengths exercises padding."""
    pairs = [
        (("a", "b"), ("x", "y")),
        (("a", "b", "c"), ("x", "y", "z")),
        (("b", "c", "a", "b"), ("y", "z", "x", "y")),
        (("c",), ("z",)),
    ] * 3
    corpus = ParallelCorpus(
        "src", "tgt", [(tuple(s), tuple(t)) for s, t in pairs]
    )
    return Seq2SeqTranslator(TINY).fit(corpus), corpus


class TestVariableLengths:
    def test_training_with_padding_succeeds(self, variable_length_model):
        model, _ = variable_length_model
        assert model.fitted
        assert all(np.isfinite(loss) for loss in model.loss_history)

    def test_translation_of_mixed_length_batch(self, variable_length_model):
        model, corpus = variable_length_model
        sources = [("a",), ("a", "b", "c", "a")]
        translations = model.translate(sources)
        assert len(translations) == 2
        # Greedy decode caps at max source length + 1 in the batch.
        assert all(len(t) <= 5 for t in translations)

    def test_empty_batch(self, variable_length_model):
        model, _ = variable_length_model
        assert model.translate([]) == []

    def test_explicit_max_length(self, variable_length_model):
        model, _ = variable_length_model
        out = model.translate([("a", "b", "c")], max_length=1)
        assert len(out[0]) <= 1


class TestUnknownWords:
    def test_unseen_source_words_translate_without_error(self, variable_length_model):
        model, _ = variable_length_model
        out = model.translate([("never-seen", "also-new")])
        assert len(out) == 1  # maps to <unk> internally

    def test_translations_never_contain_specials(self, variable_length_model):
        model, corpus = variable_length_model
        for sentence in model.translate(corpus.source_sentences):
            for word in sentence:
                assert not word.startswith("<")


class TestScoreValidation:
    def test_score_on_empty_corpus_rejected(self, variable_length_model):
        model, _ = variable_length_model
        with pytest.raises(ValueError):
            model.score(ParallelCorpus("src", "tgt", []))

    def test_score_checks_sensor_names(self, variable_length_model):
        model, corpus = variable_length_model
        wrong = ParallelCorpus("other", "tgt", corpus.pairs)
        with pytest.raises(ValueError, match="source"):
            model.score(wrong)
