"""Tests for the LSTM seq2seq translator (the paper's NMT model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import MultivariateEventLog, LanguageConfig, MultiLanguageCorpus, ParallelCorpus
from repro.translation import NMTConfig, Seq2SeqTranslator


@pytest.fixture(scope="module")
def copy_corpus():
    """A trivially learnable corpus: target sentence == source sentence."""
    sentences = [
        tuple(f"w{(i + j) % 4}" for j in range(4)) for i in range(12)
    ]
    return ParallelCorpus.from_sentences("src", "tgt", sentences, sentences)


@pytest.fixture(scope="module")
def trained_copy_model(copy_corpus):
    config = NMTConfig(
        embedding_size=12,
        hidden_size=16,
        num_layers=2,
        dropout=0.0,
        training_steps=250,
        batch_size=8,
        learning_rate=5e-3,
        seed=0,
    )
    return Seq2SeqTranslator(config).fit(copy_corpus)


class TestConfig:
    def test_paper_defaults(self):
        config = NMTConfig()
        assert config.embedding_size == 64
        assert config.hidden_size == 64
        assert config.num_layers == 2
        assert config.dropout == 0.2
        assert config.training_steps == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            NMTConfig(hidden_size=0)
        with pytest.raises(ValueError):
            NMTConfig(dropout=1.0)


class TestTraining:
    def test_loss_decreases(self, trained_copy_model):
        history = trained_copy_model.loss_history
        assert len(history) == 250
        early = np.mean(history[:20])
        late = np.mean(history[-20:])
        assert late < early / 3

    def test_learns_copy_task(self, trained_copy_model, copy_corpus):
        score = trained_copy_model.score(copy_corpus)
        assert score > 90.0

    def test_translations_use_target_vocabulary(self, trained_copy_model, copy_corpus):
        translations = trained_copy_model.translate(copy_corpus.source_sentences[:3])
        target_words = {w for s in copy_corpus.target_sentences for w in s}
        for sentence in translations:
            assert set(sentence) <= target_words

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            Seq2SeqTranslator(NMTConfig.small()).fit(ParallelCorpus("a", "b", []))

    def test_translate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Seq2SeqTranslator().translate([("w",)])


class TestDeterminism:
    def test_same_seed_same_translations(self, copy_corpus):
        config = NMTConfig(
            embedding_size=8, hidden_size=8, num_layers=1, dropout=0.0,
            training_steps=30, batch_size=4, seed=7,
        )
        a = Seq2SeqTranslator(config).fit(copy_corpus)
        b = Seq2SeqTranslator(config).fit(copy_corpus)
        sources = copy_corpus.source_sentences[:4]
        assert a.translate(sources) == b.translate(sources)
        np.testing.assert_allclose(a.loss_history, b.loss_history)


class TestEndToEndPair:
    def test_related_sensors_beat_unrelated(self, related_log):
        """On real sensor languages the NMT separates strong from weak
        pairs, which is the property Algorithm 1 depends on."""
        config_lang = LanguageConfig(word_size=4, word_stride=1, sentence_length=4, sentence_stride=4)
        corpus = MultiLanguageCorpus.fit(related_log, config_lang)
        nmt = NMTConfig(
            embedding_size=12, hidden_size=16, num_layers=2, dropout=0.0,
            training_steps=200, batch_size=12, learning_rate=5e-3, seed=1,
        )
        related = corpus.parallel("sA", "sB")
        unrelated = corpus.parallel("sA", "sC")
        related_score = Seq2SeqTranslator(nmt).fit(related).score(related)
        unrelated_score = Seq2SeqTranslator(nmt).fit(unrelated).score(unrelated)
        assert related_score > unrelated_score + 15
