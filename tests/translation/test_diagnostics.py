"""Tests for pairwise relationship diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.translation import diagnose_pair


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(8)
    total = 480
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    quiet = ["OFF"] * 200 + ["ON"] + ["OFF"] * 279  # near-constant target
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    log = MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sQ": quiet, "sC": c})
    return MultivariateRelationshipGraph.build(
        log.slice(0, 320),
        log.slice(320, 480),
        config=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",
    )


class TestDiagnosePair:
    def test_strong_pair_verdict(self, graph):
        diagnostics = diagnose_pair(graph, "sA", "sB")
        assert diagnostics.score > 60
        assert "strong behavioural relationship" in diagnostics.summary() or (
            diagnostics.score < 80
        )
        assert diagnostics.breakdown.precisions[1] > 0.5

    def test_trivial_target_flagged(self, graph):
        diagnostics = diagnose_pair(graph, "sA", "sQ")
        assert diagnostics.target_language.is_trivial()
        if diagnostics.score >= 90:
            assert diagnostics.trivially_translatable
            assert "trivially translatable" in diagnostics.summary()

    def test_asymmetry_reported(self, graph):
        diagnostics = diagnose_pair(graph, "sA", "sB")
        assert diagnostics.reverse_score == graph.score("sB", "sA")
        assert diagnostics.asymmetry == pytest.approx(
            abs(graph.score("sA", "sB") - graph.score("sB", "sA"))
        )

    def test_weak_pair_verdict(self, graph):
        diagnostics = diagnose_pair(graph, "sA", "sC")
        assert diagnostics.score < 60
        assert "weak relationship" in diagnostics.summary()

    def test_summary_contains_key_numbers(self, graph):
        diagnostics = diagnose_pair(graph, "sA", "sB")
        text = diagnostics.summary()
        assert "sA -> sB" in text
        assert "n-gram precisions" in text
        assert "target language" in text
