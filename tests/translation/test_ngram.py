"""Tests for the count-based surrogate translator."""

from __future__ import annotations

import pytest

from repro.lang import LanguageConfig, MultiLanguageCorpus, ParallelCorpus
from repro.translation import NGramTranslator


def make_corpus(related_log, tiny_language_config):
    return MultiLanguageCorpus.fit(related_log, tiny_language_config)


class TestNGramTranslator:
    def test_fit_records_sensor_names(self, related_log, tiny_language_config):
        corpus = make_corpus(related_log, tiny_language_config)
        model = NGramTranslator().fit(corpus.parallel("sA", "sB"))
        assert model.source_sensor == "sA"
        assert model.target_sensor == "sB"
        assert model.fitted

    def test_translate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NGramTranslator().translate([("w",)])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            NGramTranslator().fit(ParallelCorpus("a", "b", []))

    def test_translation_lengths_match_sources(self, related_log, tiny_language_config):
        corpus = make_corpus(related_log, tiny_language_config)
        parallel = corpus.parallel("sA", "sB")
        model = NGramTranslator().fit(parallel)
        translations = model.translate(parallel.source_sentences)
        assert len(translations) == len(parallel)
        assert all(
            len(t) == len(s) for t, s in zip(translations, parallel.source_sentences)
        )

    def test_related_pair_scores_higher_than_unrelated(
        self, related_log, tiny_language_config
    ):
        corpus = make_corpus(related_log, tiny_language_config)
        related = corpus.parallel("sA", "sB")
        unrelated = corpus.parallel("sA", "sC")
        related_score = NGramTranslator().fit(related).score(related)
        unrelated_score = NGramTranslator().fit(unrelated).score(unrelated)
        assert related_score > unrelated_score + 20

    def test_deterministic_pair_scores_in_strong_band(
        self, related_log, tiny_language_config
    ):
        """A delayed copy lands in the strong-relationship BLEU band.

        Sentence-start ambiguity (the delay cannot be resolved without
        cross-sentence context) keeps the score below 100 — the same
        effect that puts the paper's most useful relationships in the
        [80, 90) band rather than [90, 100].
        """
        corpus = make_corpus(related_log, tiny_language_config)
        parallel = corpus.parallel("sA", "sB")
        score = NGramTranslator().fit(parallel).score(parallel)
        assert score > 80.0

    def test_unseen_source_word_backs_off_to_marginal(
        self, related_log, tiny_language_config
    ):
        corpus = make_corpus(related_log, tiny_language_config)
        parallel = corpus.parallel("sA", "sB")
        model = NGramTranslator().fit(parallel)
        translations = model.translate([("never-seen-word",) * 5])
        assert len(translations[0]) == 5  # still produces output

    def test_history_conditioning_can_be_disabled(
        self, related_log, tiny_language_config
    ):
        corpus = make_corpus(related_log, tiny_language_config)
        parallel = corpus.parallel("sA", "sB")
        model = NGramTranslator(use_target_history=False).fit(parallel)
        score = model.score(parallel)
        assert 0.0 <= score <= 100.0

    def test_corpus_sensor_mismatch_rejected(self, related_log, tiny_language_config):
        corpus = make_corpus(related_log, tiny_language_config)
        model = NGramTranslator().fit(corpus.parallel("sA", "sB"))
        with pytest.raises(ValueError, match="source"):
            model.score(corpus.parallel("sC", "sB"))
