"""Tests for the BLEU implementation (Papineni et al., 2002)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.translation import brevity_penalty, corpus_bleu, modified_precision, sentence_bleu

WORDS = st.sampled_from(["aa", "ab", "ba", "bb", "cc"])
SENTENCES = st.lists(WORDS, min_size=1, max_size=12)


class TestModifiedPrecision:
    def test_exact_match(self):
        matched, total = modified_precision([["a", "b", "c"]], [["a", "b", "c"]], 1)
        assert (matched, total) == (3, 3)

    def test_clipping_prevents_overcounting(self):
        # Candidate repeats "the" 7 times; reference contains it twice.
        candidate = ["the"] * 7
        reference = ["the", "cat", "the", "mat"]
        matched, total = modified_precision([candidate], [reference], 1)
        assert (matched, total) == (2, 7)

    def test_bigram_counting(self):
        matched, total = modified_precision([["a", "b", "c"]], [["a", "b", "d"]], 2)
        assert (matched, total) == (1, 2)

    def test_order_longer_than_sentence(self):
        matched, total = modified_precision([["a"]], [["a"]], 3)
        assert (matched, total) == (0, 0)


class TestBrevityPenalty:
    def test_no_penalty_when_long_enough(self):
        assert brevity_penalty(10, 10) == 1.0
        assert brevity_penalty(12, 10) == 1.0

    def test_penalty_formula(self):
        assert brevity_penalty(5, 10) == pytest.approx(math.exp(1 - 2.0))

    def test_empty_candidate(self):
        assert brevity_penalty(0, 10) == 0.0


class TestCorpusBleu:
    def test_perfect_translation_scores_100(self):
        sentences = [["w1", "w2", "w3", "w4", "w5"]]
        assert corpus_bleu(sentences, sentences) == pytest.approx(100.0)

    def test_disjoint_translation_scores_0(self):
        assert corpus_bleu([["a"] * 5], [["b"] * 5]) == 0.0

    def test_score_scale_and_bounds(self):
        candidate = [["a", "b", "c", "d", "e"]]
        reference = [["a", "b", "c", "d", "x"]]
        score = corpus_bleu(candidate, reference)
        assert 0.0 < score < 100.0

    def test_multiple_sentences_pool_counts(self):
        candidates = [["a", "b"], ["c", "d"]]
        references = [["a", "b"], ["c", "d"]]
        assert corpus_bleu(candidates, references) == pytest.approx(100.0)

    def test_known_value_half_unigrams(self):
        """1 of 2 unigrams match, no bigrams: smoothed BLEU is computable
        and unsmoothed is 0 (a zero higher-order count)."""
        candidate = [["a", "x"]]
        reference = [["a", "b"]]
        assert corpus_bleu(candidate, reference, smooth=False) == 0.0
        assert corpus_bleu(candidate, reference, smooth=True) > 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu([["a"]], [["a"], ["b"]])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_brevity_penalty_applied(self):
        short = corpus_bleu([["a", "b"]], [["a", "b", "c", "d"]], smooth=True)
        full = corpus_bleu([["a", "b", "c", "d"]], [["a", "b", "c", "d"]], smooth=True)
        assert short < full

    def test_better_translation_scores_higher(self):
        reference = [["a", "b", "c", "d", "e", "f"]]
        close = [["a", "b", "c", "d", "e", "x"]]
        far = [["a", "x", "y", "z", "w", "v"]]
        assert corpus_bleu(close, reference, smooth=True) > corpus_bleu(
            far, reference, smooth=True
        )


class TestSentenceBleu:
    def test_identity_is_100(self):
        assert sentence_bleu(["x", "y", "z", "w"], ["x", "y", "z", "w"]) == pytest.approx(100.0)

    def test_always_finite_for_short_sentences(self):
        # Single-word sentences have no higher-order n-grams at all.
        assert 0.0 <= sentence_bleu(["a"], ["a"]) <= 100.0
        assert sentence_bleu(["a"], ["b"]) == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=80, deadline=None)
@given(candidate=SENTENCES, reference=SENTENCES)
def test_property_bleu_bounded(candidate, reference):
    score = sentence_bleu(candidate, reference)
    assert 0.0 <= score <= 100.0 + 1e-9


@settings(max_examples=80, deadline=None)
@given(sentence=SENTENCES)
def test_property_identity_is_maximal(sentence):
    assert sentence_bleu(sentence, sentence) == pytest.approx(100.0)


@settings(max_examples=50, deadline=None)
@given(sentences=st.lists(SENTENCES, min_size=1, max_size=6))
def test_property_corpus_identity(sentences):
    assert corpus_bleu(sentences, sentences) == pytest.approx(100.0)
