"""Property-based tests for the n-gram translator's contracts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ParallelCorpus
from repro.translation import NGramTranslator

WORD = st.sampled_from(["aa", "ab", "ba", "bb"])
SENTENCE = st.lists(WORD, min_size=1, max_size=6).map(tuple)
CORPUS = st.lists(st.tuples(SENTENCE, SENTENCE), min_size=1, max_size=15)


def aligned(pairs):
    """Trim each pair to equal source/target length (positional model)."""
    return [
        (s[: min(len(s), len(t))], t[: min(len(s), len(t))]) for s, t in pairs
    ]


@settings(max_examples=50, deadline=None)
@given(CORPUS)
def test_property_translation_preserves_lengths(pairs):
    corpus = ParallelCorpus("src", "tgt", aligned(pairs))
    model = NGramTranslator().fit(corpus)
    translations = model.translate(corpus.source_sentences)
    for translation, source in zip(translations, corpus.source_sentences):
        assert len(translation) == len(source)


@settings(max_examples=50, deadline=None)
@given(CORPUS)
def test_property_translations_use_observed_target_words(pairs):
    corpus = ParallelCorpus("src", "tgt", aligned(pairs))
    model = NGramTranslator().fit(corpus)
    target_words = {w for _, t in corpus.pairs for w in t}
    for translation in model.translate(corpus.source_sentences):
        assert set(translation) <= target_words


@settings(max_examples=30, deadline=None)
@given(CORPUS)
def test_property_translation_deterministic(pairs):
    corpus = ParallelCorpus("src", "tgt", aligned(pairs))
    model = NGramTranslator().fit(corpus)
    first = model.translate(corpus.source_sentences)
    second = model.translate(corpus.source_sentences)
    assert first == second


@settings(max_examples=30, deadline=None)
@given(CORPUS)
def test_property_identity_corpus_scores_perfectly(pairs):
    """Target == source makes translation trivial: BLEU 100."""
    sentences = [s for s, _ in aligned(pairs)]
    corpus = ParallelCorpus("src", "tgt", list(zip(sentences, sentences)))
    model = NGramTranslator().fit(corpus)
    assert model.score(corpus) == pytest.approx(100.0)
