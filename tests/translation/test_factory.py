"""Tests for the translation-engine factory."""

from __future__ import annotations

import pytest

from repro.translation import (
    ENGINES,
    NGramTranslator,
    NMTConfig,
    Seq2SeqTranslator,
    make_translator,
    translator_factory,
)


class TestFactory:
    def test_known_engines(self):
        assert isinstance(make_translator("ngram"), NGramTranslator)
        assert isinstance(make_translator("seq2seq"), Seq2SeqTranslator)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown translation engine"):
            make_translator("transformer")
        with pytest.raises(ValueError):
            translator_factory("transformer")

    def test_factory_produces_fresh_instances(self):
        factory = translator_factory("ngram")
        assert factory() is not factory()

    def test_config_is_passed_to_seq2seq(self):
        config = NMTConfig.small(seed=3)
        model = translator_factory("seq2seq", config)()
        assert model.config is config

    def test_engines_constant_is_complete(self):
        for engine in ENGINES:
            assert make_translator(engine) is not None
