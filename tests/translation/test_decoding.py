"""Tests for beam-search decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import ParallelCorpus
from repro.translation import (
    BeamHypothesis,
    NMTConfig,
    Seq2SeqTranslator,
    beam_search_translate,
    sentence_bleu,
)


@pytest.fixture(scope="module")
def trained_model():
    sentences = [tuple(f"w{(i + j) % 4}" for j in range(4)) for i in range(12)]
    corpus = ParallelCorpus.from_sentences("src", "tgt", sentences, sentences)
    config = NMTConfig(
        embedding_size=12,
        hidden_size=16,
        num_layers=2,
        dropout=0.0,
        training_steps=250,
        batch_size=8,
        learning_rate=5e-3,
        seed=0,
    )
    return Seq2SeqTranslator(config).fit(corpus), corpus


class TestBeamSearch:
    def test_beam_width_one_matches_greedy(self, trained_model):
        model, corpus = trained_model
        source = corpus.source_sentences[0]
        greedy = model.translate([source])[0]
        beam = beam_search_translate(model, source, beam_width=1, length_penalty=0.0)
        assert beam == greedy

    def test_wider_beam_never_much_worse(self, trained_model):
        """Beam search's normalised model score is >= greedy's proxy:
        on a well-learned task its BLEU matches or beats greedy."""
        model, corpus = trained_model
        greedy_total = 0.0
        beam_total = 0.0
        for source, target in corpus.pairs[:6]:
            greedy_total += sentence_bleu(model.translate([source])[0], target)
            beam_total += sentence_bleu(
                beam_search_translate(model, source, beam_width=4), target
            )
        assert beam_total >= greedy_total - 5.0

    def test_respects_max_length(self, trained_model):
        model, corpus = trained_model
        out = beam_search_translate(
            model, corpus.source_sentences[0], beam_width=2, max_length=2
        )
        assert len(out) <= 2

    def test_output_words_in_target_vocabulary(self, trained_model):
        model, corpus = trained_model
        target_words = {w for s in corpus.target_sentences for w in s}
        out = beam_search_translate(model, corpus.source_sentences[1], beam_width=3)
        assert set(out) <= target_words

    def test_invalid_beam_width(self, trained_model):
        model, corpus = trained_model
        with pytest.raises(ValueError):
            beam_search_translate(model, corpus.source_sentences[0], beam_width=0)

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError):
            beam_search_translate(Seq2SeqTranslator(), ("w",))


class TestBeamHypothesis:
    def test_length_normalisation_prefers_longer_at_equal_logprob(self):
        short = BeamHypothesis(log_probability=-2.0, tokens=(1, 2), state=None)
        long = BeamHypothesis(log_probability=-2.0, tokens=(1, 2, 3, 4, 5), state=None)
        assert long.normalised_score() > short.normalised_score()

    def test_zero_penalty_is_raw_logprob(self):
        hyp = BeamHypothesis(log_probability=-3.5, tokens=(1, 2, 3), state=None)
        assert hyp.normalised_score(length_penalty=0.0) == -3.5
