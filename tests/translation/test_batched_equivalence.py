"""Looped-vs-batched training-engine equivalence.

The batched engine's contract (see ``repro.translation.batched``) is
that every pair in a cohort trains exactly as it would have on its own:
same RNG stream, same arithmetic per pair slice.  These tests pin that
down for both recurrent units, all three attention scores, mixed
vocabulary widths, serialization, and early-stop cohort compaction.
"""

from __future__ import annotations

import pickle
from types import SimpleNamespace

import numpy as np
import pytest

from repro.lang import ParallelCorpus
from repro.translation import (
    BatchedPairTrainer,
    NMTConfig,
    Seq2SeqTranslator,
    cohort_signature,
    group_cohorts,
)


def _config(**overrides) -> NMTConfig:
    base = NMTConfig.small(seed=3)
    values = {**base.__dict__, "training_steps": 20, "hidden_size": 12, "embedding_size": 8}
    values.update(overrides)
    return NMTConfig(**values)


def _make_task(rng, index, count=20, length=5, source_vocab=5, target_vocab=5):
    source = [
        tuple(int(x) for x in rng.integers(0, source_vocab, size=length))
        for _ in range(count)
    ]
    target = [
        tuple(int(x) for x in rng.integers(0, target_vocab, size=length))
        for _ in range(count)
    ]
    dev_source = [
        tuple(int(x) for x in rng.integers(0, source_vocab, size=length)) for _ in range(4)
    ]
    dev_target = [
        tuple(int(x) for x in rng.integers(0, target_vocab, size=length)) for _ in range(4)
    ]
    corpus = ParallelCorpus.from_sentences(f"s{index}", f"t{index}", source, target)
    return SimpleNamespace(
        source=f"s{index}",
        target=f"t{index}",
        corpus=corpus,
        dev_source=dev_source,
        dev_target=dev_target,
    )


def _tasks(seed=7, num=3, **kwargs):
    rng = np.random.default_rng(seed)
    return [_make_task(rng, index, **kwargs) for index in range(num)]


def _assert_states_equal(looped: Seq2SeqTranslator, batched: Seq2SeqTranslator):
    state_l, state_b = looped.state_dict(), batched.state_dict()
    assert state_l.keys() == state_b.keys()
    for key in state_l:
        np.testing.assert_array_equal(state_l[key], state_b[key], err_msg=key)


class TestLockstepEquivalence:
    @pytest.mark.parametrize("unit", ["lstm", "gru"])
    @pytest.mark.parametrize("score", ["dot", "general", "concat"])
    def test_bit_identical_weights_and_losses(self, unit, score):
        config = _config(recurrent_unit=unit, attention_score=score)
        tasks = _tasks()
        looped = [Seq2SeqTranslator(config).fit(task.corpus) for task in tasks]
        results = BatchedPairTrainer(config=config).train_cohort(tasks)
        for model, result in zip(looped, results):
            _assert_states_equal(model, result.model)
            np.testing.assert_allclose(
                model.loss_history, result.model.loss_history, rtol=1e-9
            )

    def test_mixed_vocab_widths_stay_bit_identical(self):
        # Different target vocabularies force projection/embedding
        # padding, but the loss and clip-norm only ever reduce over
        # each pair's real width — so even mixed-width cohorts train
        # bit-identically to the looped engine (padded columns in a
        # softmax would perturb summation blocking by ~1e-16/step,
        # which amplifies chaotically over long trainings).
        config = _config(training_steps=60)
        rng = np.random.default_rng(11)
        tasks = [
            _make_task(rng, index, target_vocab=4 + 2 * index) for index in range(3)
        ]
        looped = [Seq2SeqTranslator(config).fit(task.corpus) for task in tasks]
        results = BatchedPairTrainer(config=config).train_cohort(tasks)
        for model, result in zip(looped, results):
            _assert_states_equal(model, result.model)
            np.testing.assert_array_equal(
                model.loss_history, result.model.loss_history
            )

    def test_dev_translations_and_scores_match(self):
        config = _config()
        tasks = _tasks(seed=13)
        results = BatchedPairTrainer(config=config).train_cohort(tasks)
        for task, result in zip(tasks, results):
            reference = Seq2SeqTranslator(config).fit(task.corpus)
            assert reference.translate(task.dev_source) == result.model.translate(
                task.dev_source
            )
            assert result.record.dev_bleu == result.score
            assert result.record.loss_history == result.model.loss_history
            assert result.record.train_seconds > 0
            assert result.record.eval_seconds > 0

    def test_cohort_composition_does_not_matter(self):
        # Training a pair in a cohort of three must give the same model
        # as training it alone — pairs may not leak into each other.
        config = _config()
        tasks = _tasks(seed=17)
        together = BatchedPairTrainer(config=config).train_cohort(tasks)
        for task, result in zip(tasks, together):
            alone = BatchedPairTrainer(config=config).train_cohort([task])[0]
            _assert_states_equal(alone.model, result.model)


class TestSerialization:
    def test_state_dict_round_trip_into_looped_model(self):
        config = _config()
        tasks = _tasks(seed=19, num=2)
        results = BatchedPairTrainer(config=config).train_cohort(tasks)
        for task, result in zip(tasks, results):
            fresh = Seq2SeqTranslator(config).fit(task.corpus)
            fresh.load_state_dict(result.model.state_dict())
            assert fresh.weights_digest() == result.model.weights_digest()
            assert fresh.translate(task.dev_source) == result.model.translate(
                task.dev_source
            )

    def test_pickle_round_trip(self):
        config = _config()
        task = _tasks(seed=23, num=1)[0]
        result = BatchedPairTrainer(config=config).train_cohort([task])[0]
        clone = pickle.loads(pickle.dumps(result.model))
        assert clone.weights_digest() == result.model.weights_digest()
        assert clone.translate(task.dev_source) == result.model.translate(task.dev_source)


class TestCohortGrouping:
    def test_groups_by_shape_and_chunks(self):
        rng = np.random.default_rng(29)
        short = [_make_task(rng, index, length=4) for index in range(3)]
        long = [_make_task(rng, index + 3, length=6) for index in range(2)]
        cohorts, leftovers = group_cohorts(short + long, cohort_size=2)
        assert not leftovers
        assert [len(cohort) for cohort in cohorts] == [2, 1, 2]
        assert {task.source for task in cohorts[0] + cohorts[1]} == {
            task.source for task in short
        }

    def test_chunks_sort_by_vocab_width(self):
        # Within a signature group, tasks are stably sorted by
        # vocabulary widths before chunking so most cohorts come out
        # width-uniform and skip the padded-slab arithmetic.
        rng = np.random.default_rng(43)
        tasks = [
            _make_task(rng, 0, target_vocab=9),
            _make_task(rng, 1, target_vocab=4),
            _make_task(rng, 2, target_vocab=4),
        ]
        cohorts, leftovers = group_cohorts(tasks, cohort_size=2)
        assert not leftovers
        assert [[task.source for task in cohort] for cohort in cohorts] == [
            ["s1", "s2"],
            ["s0"],
        ]

    def test_ragged_corpora_are_leftovers(self):
        rng = np.random.default_rng(31)
        regular = _make_task(rng, 0)
        ragged = _make_task(rng, 1)
        sentences = list(ragged.corpus.source_sentences)
        sentences[0] = sentences[0][:-1]  # break the uniform length
        ragged.corpus = ParallelCorpus.from_sentences(
            "s1", "t1", sentences, list(ragged.corpus.target_sentences)
        )
        cohorts, leftovers = group_cohorts([regular, ragged])
        assert [task.source for task in leftovers] == ["s1"]
        assert [[task.source for task in cohort] for cohort in cohorts] == [["s0"]]
        assert cohort_signature(ragged.corpus) is None

    def test_rejects_bad_cohort_size(self):
        with pytest.raises(ValueError):
            group_cohorts([], cohort_size=0)


class TestEarlyStopping:
    def test_masked_pairs_stop_consuming_steps(self):
        config = _config(training_steps=60)
        tasks = _tasks(seed=37)
        trainer = BatchedPairTrainer(
            config=config, eval_every=20, patience=1, min_improvement=100.0
        )
        results = trainer.train_cohort(tasks)
        for result in results:
            # An unreachable improvement bar stops every pair after
            # patience=1 evaluations: 2 chunks of 20 steps, not 60.
            assert result.record.stopped_early
            assert len(result.record.loss_history) == 40
            assert len(result.record.eval_history) == 2
            # Best weights were restored, so the reported score
            # describes the returned model.
            assert result.record.dev_bleu == result.score

    def test_compaction_matches_solo_training(self):
        # Force only some pairs to stop early; the survivors must end
        # up identical to training alone with the same schedule.
        config = _config(training_steps=40)
        tasks = _tasks(seed=41)
        trainer_args = dict(eval_every=10, patience=2, min_improvement=0.0)
        together = BatchedPairTrainer(config=config, **trainer_args).train_cohort(tasks)
        for task, result in zip(tasks, together):
            alone = BatchedPairTrainer(config=config, **trainer_args).train_cohort(
                [task]
            )[0]
            _assert_states_equal(alone.model, result.model)
            assert alone.record.eval_history == result.record.eval_history
            assert alone.record.stopped_early == result.record.stopped_early
