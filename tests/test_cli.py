"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.lang import MultivariateEventLog


@pytest.fixture(scope="module")
def csv_logs(tmp_path_factory):
    """Training/dev/test CSVs for a small related-sensor system."""
    root = tmp_path_factory.mktemp("cli-logs")
    rng = np.random.default_rng(9)
    total = 700
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    log = MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})

    train = root / "train.csv"
    dev = root / "dev.csv"
    test = root / "test.csv"
    log.slice(0, 400).to_csv(train)
    log.slice(400, 550).to_csv(dev)
    log.slice(550, 700).to_csv(test)
    return train, dev, test, root


@pytest.fixture(scope="module")
def trained_model(csv_logs):
    train, dev, _, root = csv_logs
    model = root / "model.pkl"
    code = main(
        [
            "train",
            str(train),
            str(dev),
            "--model",
            str(model),
            "--word-size",
            "4",
            "--sentence-length",
            "5",
            "--range",
            "60:100",
            "--popular-threshold",
            "10",
        ]
    )
    assert code == 0
    return model


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_range_rejected(self, csv_logs):
        train, dev, _, root = csv_logs
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    str(train),
                    str(dev),
                    "--model",
                    str(root / "x.pkl"),
                    "--range",
                    "eighty-to-ninety",
                ]
            )


class TestTrainDetectInspect:
    def test_train_writes_model(self, trained_model):
        assert trained_model.exists()

    def test_detect_text_output(self, csv_logs, trained_model, capsys):
        _, _, test, _ = csv_logs
        code = main(["detect", str(test), "--model", str(trained_model)])
        assert code == 0
        out = capsys.readouterr().out
        assert "windows over" in out
        assert "alarms" in out

    def test_detect_json_output(self, csv_logs, trained_model, capsys):
        _, _, test, _ = csv_logs
        code = main(
            ["detect", str(test), "--model", str(trained_model), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "anomaly_scores" in payload
        assert all(0.0 <= s <= 1.0 for s in payload["anomaly_scores"])
        assert payload["valid_pairs"]

    def test_train_with_prescreen_reports_pruned(self, csv_logs, tmp_path, capsys):
        train, dev, test, _ = csv_logs
        model = tmp_path / "pruned.pkl"
        report_path = tmp_path / "report.json"
        code = main(
            [
                "train", str(train), str(dev),
                "--model", str(model),
                "--word-size", "4", "--sentence-length", "5",
                "--range", "60:100", "--popular-threshold", "10",
                "--prescreen", "bleu",
                "--report-json", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prescreen (bleu" in out
        report = json.loads(report_path.read_text())
        assert report["trained"] + report["pruned"] + report["skipped"] == 6
        assert report["pruned"] == len(report["pruned_pairs"])
        # The pruned model still detects.
        assert main(["detect", str(test), "--model", str(model)]) == 0

    def test_prescreen_floor_zero_prunes_nothing(self, csv_logs, tmp_path):
        train, dev, _, _ = csv_logs
        report_path = tmp_path / "report.json"
        code = main(
            [
                "train", str(train), str(dev),
                "--model", str(tmp_path / "m.pkl"),
                "--word-size", "4", "--sentence-length", "5",
                "--range", "60:100", "--popular-threshold", "10",
                "--prescreen", "bleu", "--prescreen-floor", "0",
                "--report-json", str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["pruned"] == 0
        assert report["trained"] == 6

    def test_simulate_plant_with_split(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "plant",
                str(tmp_path / "plant"),
                "--sensors",
                "8",
                "--days",
                "20",
                "--samples-per-day",
                "48",
                "--split",
                "10:3",
            ]
        )
        assert code == 0
        for name in ("events.csv", "ground_truth.json", "train.csv", "dev.csv", "test.csv"):
            assert (tmp_path / "plant" / name).exists()

    def test_simulate_backblaze(self, tmp_path):
        code = main(
            ["simulate", "backblaze", str(tmp_path / "drives"), "--drives", "4", "--days", "80"]
        )
        assert code == 0
        assert (tmp_path / "drives" / "manifest.json").exists()

    def test_simulate_invalid_split(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "plant", str(tmp_path / "p"), "--split", "ten-three"])

    def test_simulated_split_feeds_train_command(self, tmp_path):
        """The simulate -> train -> detect loop closes end to end."""
        plant_dir = tmp_path / "plant"
        assert main(
            [
                "simulate", "plant", str(plant_dir),
                "--sensors", "8", "--days", "20", "--samples-per-day", "48",
                "--split", "10:3",
            ]
        ) == 0
        model = tmp_path / "m.pkl"
        assert main(
            [
                "train", str(plant_dir / "train.csv"), str(plant_dir / "dev.csv"),
                "--model", str(model),
                "--word-size", "4", "--sentence-length", "5",
                "--range", "60:100", "--popular-threshold", "10",
            ]
        ) == 0
        assert main(["detect", str(plant_dir / "test.csv"), "--model", str(model)]) == 0

    def test_build_alias_with_cache_trains_once(self, csv_logs, tmp_path, capsys):
        """Two `repro build` runs over one --cache-dir: the second trains 0 pairs."""
        train, dev, _, _ = csv_logs
        cache = tmp_path / "cache"
        base = [
            str(train), str(dev),
            "--word-size", "4", "--sentence-length", "5",
            "--range", "60:100", "--popular-threshold", "10",
            "--cache-dir", str(cache),
        ]
        first_report = tmp_path / "first.json"
        assert main(
            ["train", *base, "--model", str(tmp_path / "m1.pkl"),
             "--report-json", str(first_report)]
        ) == 0
        second_report = tmp_path / "second.json"
        assert main(
            ["build", *base, "--model", str(tmp_path / "m2.pkl"),
             "--report-json", str(second_report)]
        ) == 0
        first = json.loads(first_report.read_text())
        second = json.loads(second_report.read_text())
        assert first["cached"] == 0 and first["trained"] > 0
        assert second["trained"] == 0
        assert second["cached"] == first["trained"]

    def test_no_cache_disables_cache_dir(self, csv_logs, tmp_path):
        train, dev, _, _ = csv_logs
        cache = tmp_path / "cache"
        report = tmp_path / "report.json"
        assert main(
            [
                "train", str(train), str(dev),
                "--model", str(tmp_path / "m.pkl"),
                "--word-size", "4", "--sentence-length", "5",
                "--range", "60:100", "--popular-threshold", "10",
                "--cache-dir", str(cache), "--no-cache",
                "--report-json", str(report),
            ]
        ) == 0
        assert not cache.exists()
        assert json.loads(report.read_text())["cached"] == 0

    def test_cache_subcommand_stats_gc_purge(self, csv_logs, tmp_path, capsys):
        train, dev, _, _ = csv_logs
        cache = tmp_path / "cache"
        assert main(
            [
                "train", str(train), str(dev),
                "--model", str(tmp_path / "m.pkl"),
                "--word-size", "4", "--sentence-length", "5",
                "--range", "60:100", "--popular-threshold", "10",
                "--cache-dir", str(cache),
            ]
        ) == 0
        capsys.readouterr()

        assert main(["cache", str(cache), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["artifacts"] > 0
        assert {row["kind"] for row in payload["by_kind"]} >= {"pair"}

        assert main(["cache", str(cache), "--gc-days", "30"]) == 0
        assert "removed 0 artifact(s)" in capsys.readouterr().out

        assert main(["cache", str(cache), "--purge", "--json"]) == 0
        purged = json.loads(capsys.readouterr().out)
        assert purged["removed"] == payload["artifacts"]
        assert purged["artifacts"] == 0

    def test_cache_negative_gc_days_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", str(tmp_path / "cache"), "--gc-days", "-1"])

    def test_inspect_with_exports(self, csv_logs, trained_model, capsys):
        _, _, _, root = csv_logs
        json_path = root / "graph.json"
        graphml_path = root / "graph.graphml"
        code = main(
            [
                "inspect",
                "--model",
                str(trained_model),
                "--export-json",
                str(json_path),
                "--export-graphml",
                str(graphml_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Global subgraph statistics" in out
        assert json_path.exists()
        assert graphml_path.exists()

    def test_inspect_writes_markdown_report(self, csv_logs, trained_model, capsys):
        _, _, _, root = csv_logs
        report_path = root / "report.md"
        code = main(
            ["inspect", "--model", str(trained_model), "--report", str(report_path)]
        )
        assert code == 0
        content = report_path.read_text()
        assert content.startswith("# Relationship-graph report")
        assert "## Strongest relationships" in content


class TestObservabilityFlags:
    BASE = [
        "--word-size", "4", "--sentence-length", "5",
        "--range", "60:100", "--popular-threshold", "10",
    ]

    def test_train_writes_metrics_snapshot(self, csv_logs, tmp_path):
        from repro.obs import SNAPSHOT_SCHEMA

        train, dev, _, _ = csv_logs
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "train", str(train), str(dev),
                "--model", str(tmp_path / "m.pkl"), *self.BASE,
                "--cache-dir", str(tmp_path / "cache"),
                "--metrics-json", str(metrics_path),
            ]
        ) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == SNAPSHOT_SCHEMA
        metrics = payload["metrics"]
        # Stage timings, cache counters and per-pair training seconds
        # all land in one snapshot.
        assert metrics["stage.pair-train.seconds"]["count"] == 1
        assert metrics["stage.corpus.cache_misses"]["value"] == 1
        assert metrics["pair_train.trained"]["value"] == 6
        assert metrics["pair_train.train_seconds"]["count"] == 6
        assert metrics["pair_train.retries"]["value"] == 0
        assert metrics["pair_train.skipped"]["value"] == 0
        assert metrics["store.misses"]["value"] > 0

    def test_warm_rebuild_metrics_show_zero_trained(self, csv_logs, tmp_path):
        train, dev, _, _ = csv_logs
        cache = tmp_path / "cache"
        base = [
            "train", str(train), str(dev), *self.BASE,
            "--cache-dir", str(cache),
        ]
        assert main([*base, "--model", str(tmp_path / "m1.pkl")]) == 0
        warm_metrics = tmp_path / "warm.json"
        assert main(
            [*base, "--model", str(tmp_path / "m2.pkl"),
             "--metrics-json", str(warm_metrics)]
        ) == 0
        metrics = json.loads(warm_metrics.read_text())["metrics"]
        assert metrics["pair_train.trained"]["value"] == 0
        assert metrics["pair_train.cached"]["value"] == 6
        assert metrics["store.hits"]["value"] >= 6

    def test_detect_metrics_json_keeps_stdout_parseable(
        self, csv_logs, trained_model, tmp_path, capsys
    ):
        _, _, test, _ = csv_logs
        metrics_path = tmp_path / "detect-metrics.json"
        assert main(
            [
                "detect", str(test), "--model", str(trained_model),
                "--json", "--metrics-json", str(metrics_path),
            ]
        ) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert "anomaly_scores" in payload
        assert "metrics snapshot written" in captured.err
        metrics = json.loads(metrics_path.read_text())["metrics"]
        assert metrics["detect.runs"]["value"] == 1
        assert metrics["detect.windows_scored"]["value"] == len(
            payload["anomaly_scores"]
        )

    def test_log_json_emits_json_lines_to_stderr(self, csv_logs, trained_model, capsys):
        import logging

        from repro.obs import ROOT_LOGGER

        _, _, test, _ = csv_logs
        root = logging.getLogger(ROOT_LOGGER)
        try:
            assert main(
                [
                    "detect", str(test), "--model", str(trained_model),
                    "--log-level", "DEBUG", "--log-json",
                ]
            ) == 0
            err_lines = [
                line for line in capsys.readouterr().err.splitlines() if line
            ]
            records = [json.loads(line) for line in err_lines]
            assert records, "expected at least one JSON log record"
            assert all(r["logger"].startswith("repro") for r in records)
            assert any(r["logger"] == "repro.detection.anomaly" for r in records)
        finally:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)

    def test_invalid_log_level_rejected(self, csv_logs, trained_model):
        _, _, test, _ = csv_logs
        with pytest.raises(SystemExit):
            main(
                ["detect", str(test), "--model", str(trained_model),
                 "--log-level", "LOUD"]
            )


class TestScenariosCommand:
    def test_list_names_every_scenario(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_list_json(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["scenario"] for row in rows] == scenario_names()

    def test_digest_is_deterministic(self, capsys):
        args = ["scenarios", "digest", "cascade", "--tier", "tiny", "--seed", "11"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        name, digest = first.split()
        assert name == "cascade" and len(digest) == 64

    def test_run_writes_bench_and_json(self, tmp_path, capsys):
        from repro.scenarios import SCENARIO_SCHEMA

        bench = tmp_path / "bench.json"
        assert main(
            [
                "scenarios", "run", "dropout",
                "--tier", "tiny", "--seed", "11",
                "--detectors", "markov",
                "--bench", str(bench), "--json",
            ]
        ) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [r["scenario"] for r in reports] == ["dropout"]
        payload = json.loads(bench.read_text())
        assert payload["schema"] == SCENARIO_SCHEMA
        assert len(payload["records"]) == 1

    def test_run_writes_metrics_snapshot(self, tmp_path, capsys):
        from repro.obs import SNAPSHOT_SCHEMA

        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "scenarios", "run", "dropout",
                "--tier", "tiny", "--detectors", "markov",
                "--metrics-json", str(metrics_path),
            ]
        ) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["metrics"]["scenarios.runs"]["value"] == 1

    def test_run_requires_selection(self):
        with pytest.raises(SystemExit, match="no scenarios selected"):
            main(["scenarios", "run"])

    def test_run_rejects_names_with_all(self):
        with pytest.raises(SystemExit, match="not both"):
            main(["scenarios", "run", "cascade", "--all"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenarios", "run", "nope"])

    def test_unknown_detector_rejected(self):
        with pytest.raises(SystemExit, match="unknown detectors"):
            main(["scenarios", "run", "dropout", "--detectors", "oracle"])


class TestServeCommand:
    def test_serve_feed_matches_detect(self, csv_logs, trained_model, capsys):
        """The merged service feed must carry exactly the batch scores."""
        _, _, test, _ = csv_logs
        assert main(["detect", str(test), "--model", str(trained_model), "--json"]) == 0
        batch = json.loads(capsys.readouterr().out)

        code = main(
            [
                "serve",
                f"lineA={test}",
                f"lineB={test}",
                "--model", str(trained_model),
                "--shards", "2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 2
        assert sorted(payload["tenants"]) == ["lineA", "lineB"]
        assert payload["restored"] is False
        assert payload["dropped_chunks"] == 0
        assert payload["errors"] == {}
        for tenant in ("lineA", "lineB"):
            scores = [
                w["anomaly_score"]
                for w in payload["windows"]
                if w["tenant"] == tenant
            ]
            assert len(scores) == len(batch["anomaly_scores"])
            np.testing.assert_allclose(
                scores, batch["anomaly_scores"], atol=1e-12
            )

    def test_serve_snapshot_roundtrip(self, csv_logs, trained_model, tmp_path, capsys):
        _, _, test, _ = csv_logs
        snap = tmp_path / "snap"
        args = [
            "serve", f"lineA={test}",
            "--model", str(trained_model),
            "--snapshot-dir", str(snap),
            "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["restored"] is False
        assert (snap / "manifest.json").exists()

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["restored"] is True
        # The resumed run continues the stream instead of restarting it.
        first_max = max(w["window_index"] for w in first["windows"])
        second_min = min(w["window_index"] for w in second["windows"])
        assert second_min == first_max + 1

    def test_serve_text_output(self, csv_logs, trained_model, capsys):
        _, _, test, _ = csv_logs
        code = main(
            ["serve", f"only={test}", "--model", str(trained_model)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 1 stream(s)" in out
        assert "shard 0 window" in out

    def test_serve_writes_metrics_snapshot(self, csv_logs, trained_model, tmp_path):
        from repro.obs import SNAPSHOT_SCHEMA

        _, _, test, _ = csv_logs
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "serve", f"only={test}",
                "--model", str(trained_model),
                "--metrics-json", str(metrics_path),
            ]
        ) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["metrics"]["service.windows_emitted"]["value"] > 0
        assert payload["metrics"]["service.dropped"]["value"] == 0

    def test_serve_invalid_stream_spec_rejected(self, trained_model):
        with pytest.raises(SystemExit, match="NAME=CSV"):
            main(["serve", "no-equals-sign", "--model", str(trained_model)])

    def test_serve_duplicate_stream_rejected(self, csv_logs, trained_model):
        _, _, test, _ = csv_logs
        with pytest.raises(SystemExit, match="duplicate stream"):
            main(
                [
                    "serve", f"x={test}", f"x={test}",
                    "--model", str(trained_model),
                ]
            )

    def test_serve_invalid_shards_rejected(self, csv_logs, trained_model):
        _, _, test, _ = csv_logs
        with pytest.raises(SystemExit, match="--shards"):
            main(
                [
                    "serve", f"x={test}",
                    "--model", str(trained_model),
                    "--shards", "0",
                ]
            )


class TestBenchOnlineCommand:
    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(SystemExit, match="shard-counts"):
            main(["bench", "online", "--shard-counts", "two,four"])

    def test_invalid_tenants_rejected(self):
        with pytest.raises(SystemExit, match="tenants"):
            main(["bench", "online", "--tenants", "0"])
