"""Tests for sliding-window word/sentence generation (Section II-A2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import generate_sentences, generate_words, num_windows, sliding_windows


class TestNumWindows:
    def test_exact_fit(self):
        assert num_windows(10, 10, 1) == 1

    def test_paper_plant_words(self):
        # 1440 chars/day, word 10, stride 1 -> 1431 words.
        assert num_windows(1440, 10, 1) == 1431

    def test_too_short_gives_zero(self):
        assert num_windows(5, 10, 1) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            num_windows(10, 0, 1)
        with pytest.raises(ValueError):
            num_windows(10, 3, 0)


class TestGenerateWords:
    def test_overlapping_words(self):
        words = generate_words("abcde", word_size=3, stride=1)
        assert words == ["abc", "bcd", "cde"]

    def test_stride_skips(self):
        words = generate_words("abcdef", word_size=2, stride=2)
        assert words == ["ab", "cd", "ef"]

    def test_trailing_partial_window_dropped(self):
        words = generate_words("abcde", word_size=2, stride=2)
        assert words == ["ab", "cd"]

    def test_paper_example_overlap(self):
        """Word 10 / stride 1: adjacent words overlap by 9 characters."""
        encoded = "abababababababababab"
        words = generate_words(encoded, word_size=10, stride=1)
        for first, second in zip(words, words[1:]):
            assert first[1:] == second[:-1]


class TestGenerateSentences:
    def test_non_overlapping_default(self):
        words = [f"w{i}" for i in range(10)]
        sentences = generate_sentences(words, sentence_length=3)
        assert sentences == [
            ("w0", "w1", "w2"),
            ("w3", "w4", "w5"),
            ("w6", "w7", "w8"),
        ]

    def test_overlapping_stride_one(self):
        words = ["a", "b", "c", "d"]
        sentences = generate_sentences(words, sentence_length=2, stride=1)
        assert sentences == [("a", "b"), ("b", "c"), ("c", "d")]

    def test_paper_plant_sentence_count(self):
        """1440 samples/day, word 10/1 → 1431 words; sentence 20/20 → 71."""
        words = ["w"] * 1431
        assert len(generate_sentences(words, 20, 20)) == 71


@settings(max_examples=60, deadline=None)
@given(
    length=st.integers(0, 200),
    window=st.integers(1, 20),
    stride=st.integers(1, 10),
)
def test_property_window_count_formula(length, window, stride):
    """sliding_windows emits exactly num_windows windows of exact size."""
    items = list(range(length))
    windows = sliding_windows(items, window, stride)
    assert len(windows) == num_windows(length, window, stride)
    assert all(len(w) == window for w in windows)


@settings(max_examples=60, deadline=None)
@given(
    length=st.integers(1, 120),
    window=st.integers(1, 15),
)
def test_property_stride_one_covers_every_position(length, window):
    """With stride 1 every item appears in at least one window (when any
    window exists), and consecutive windows shift by exactly one."""
    items = list(range(length))
    windows = sliding_windows(items, window, 1)
    if not windows:
        assert length < window
        return
    covered = {item for w in windows for item in w}
    assert covered == set(items)
    for a, b in zip(windows, windows[1:]):
        assert list(a)[1:] == list(b)[:-1]
