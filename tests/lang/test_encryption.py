"""Tests for event encryption (Section II-A1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ALPHABET, UNKNOWN_CHAR, EventSequence, SensorEncoder


class TestSensorEncoder:
    def test_alphanumeric_assignment_order(self):
        encoder = SensorEncoder.fit(EventSequence("s1", ["on", "off", "idle"]))
        # sorted: idle < off < on
        assert encoder.state_to_char == {"idle": "a", "off": "b", "on": "c"}

    def test_encode_produces_characters(self):
        encoder = SensorEncoder.fit(EventSequence("s1", ["off", "on"]))
        assert encoder.encode(["on", "off", "on"]) == "bab"

    def test_unknown_state_maps_to_unknown_char(self):
        encoder = SensorEncoder.fit(EventSequence("s1", ["off", "on"]))
        assert encoder.encode_event("EXPLODED") == UNKNOWN_CHAR
        assert encoder.encode(["on", "EXPLODED"]) == "b" + UNKNOWN_CHAR

    def test_decode_inverts_encode(self):
        events = ["low", "high", "medium", "low"]
        encoder = SensorEncoder.fit(EventSequence("s1", events))
        assert encoder.decode(encoder.encode(events)) == events

    def test_decode_rejects_unknown_char(self):
        encoder = SensorEncoder.fit(EventSequence("s1", ["a", "b"]))
        with pytest.raises(KeyError):
            encoder.decode(UNKNOWN_CHAR)

    def test_qualified_token_format(self):
        encoder = SensorEncoder.fit(EventSequence("s7", ["off", "on"]))
        assert encoder.qualified_token("off") == "s7.a"

    def test_cardinality_limit(self):
        states = [f"state_{i:03d}" for i in range(len(ALPHABET) + 1)]
        with pytest.raises(ValueError, match="cardinality"):
            SensorEncoder.fit(EventSequence("s1", states))

    def test_unknown_char_not_in_alphabet(self):
        assert UNKNOWN_CHAR not in ALPHABET


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(["on", "off", "idle", "status 1", "status 2", "fault"]),
        min_size=1,
        max_size=50,
    )
)
def test_property_encode_decode_roundtrip(events):
    """Training events always round-trip through the codebook."""
    encoder = SensorEncoder.fit(EventSequence("sX", events))
    assert encoder.decode(encoder.encode(events)) == [str(e) for e in events]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=30, unique=True)
)
def test_property_distinct_states_get_distinct_chars(states):
    """The codebook is injective over training states."""
    encoder = SensorEncoder.fit(EventSequence("sX", states))
    chars = list(encoder.state_to_char.values())
    assert len(chars) == len(set(chars))
    assert UNKNOWN_CHAR not in chars
