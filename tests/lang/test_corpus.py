"""Tests for sensor languages and parallel corpora."""

from __future__ import annotations

import pytest

from repro.lang import (
    EventSequence,
    LanguageConfig,
    MultiLanguageCorpus,
    MultivariateEventLog,
    ParallelCorpus,
    SensorLanguage,
    filter_constant_sensors,
)


@pytest.fixture()
def config():
    return LanguageConfig(word_size=3, word_stride=1, sentence_length=4, sentence_stride=4)


@pytest.fixture()
def simple_log():
    return MultivariateEventLog.from_mapping(
        {
            "alive": ["on", "off"] * 30,
            "dead": ["off"] * 60,
            "counter": [str(i % 3) for i in range(60)],
        }
    )


class TestLanguageConfig:
    def test_defaults_match_paper_plant_settings(self):
        config = LanguageConfig()
        assert config.word_size == 10
        assert config.word_stride == 1
        assert config.sentence_length == 20
        assert config.effective_sentence_stride == 20

    def test_backblaze_preset(self):
        config = LanguageConfig.backblaze()
        assert (config.word_size, config.sentence_length) == (5, 7)
        assert config.effective_sentence_stride == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            LanguageConfig(word_size=0)
        with pytest.raises(ValueError):
            LanguageConfig(sentence_stride=0)

    def test_samples_per_sentence(self):
        config = LanguageConfig(word_size=10, word_stride=1, sentence_length=20)
        assert config.samples_per_sentence() == 10 + 19


class TestFilterConstantSensors:
    def test_constant_sensor_discarded(self, simple_log):
        filtered, discarded = filter_constant_sensors(simple_log)
        assert discarded == ["dead"]
        assert filtered.sensors == ["alive", "counter"]

    def test_nothing_discarded_when_all_vary(self):
        log = MultivariateEventLog.from_mapping({"a": ["1", "2"], "b": ["x", "y"]})
        filtered, discarded = filter_constant_sensors(log)
        assert discarded == []
        assert filtered.sensors == ["a", "b"]


class TestSensorLanguage:
    def test_fit_builds_sentences_and_vocab(self, config):
        sequence = EventSequence("s1", ["on", "off"] * 20)
        language = SensorLanguage.fit(sequence, config)
        assert language.sensor == "s1"
        assert len(language.sentences) > 0
        assert language.vocabulary_size >= 1
        assert all(len(s) == 4 for s in language.sentences)

    def test_sentences_for_new_sequence_uses_trained_encoder(self, config):
        train = EventSequence("s1", ["on", "off"] * 20)
        language = SensorLanguage.fit(train, config)
        test = EventSequence("s1", ["off", "on"] * 20)
        sentences = language.sentences_for(test)
        assert len(sentences) == len(language.sentences)

    def test_unseen_state_becomes_unknown_word(self, config):
        train = EventSequence("s1", ["on", "off"] * 20)
        language = SensorLanguage.fit(train, config)
        test = EventSequence("s1", ["BROKEN"] * 40)
        words = language.words_for(test)
        assert set(words) == {"???"}

    def test_vocabulary_size_counts_distinct_words(self, config):
        # Alternating binary sequence has exactly 2 distinct 3-char words.
        sequence = EventSequence("s1", ["on", "off"] * 20)
        language = SensorLanguage.fit(sequence, config)
        assert language.vocabulary_size == 2


class TestMultiLanguageCorpus:
    def test_fit_filters_and_builds_languages(self, simple_log, config):
        corpus = MultiLanguageCorpus.fit(simple_log, config)
        assert corpus.discarded_sensors == ["dead"]
        assert set(corpus.sensors) == {"alive", "counter"}
        assert corpus["alive"].vocabulary_size >= 1

    def test_vocabulary_sizes_mapping(self, simple_log, config):
        corpus = MultiLanguageCorpus.fit(simple_log, config)
        sizes = corpus.vocabulary_sizes()
        assert set(sizes) == {"alive", "counter"}
        assert all(size > 0 for size in sizes.values())

    def test_parallel_aligns_sentences(self, simple_log, config):
        corpus = MultiLanguageCorpus.fit(simple_log, config)
        parallel = corpus.parallel("alive", "counter")
        assert parallel.source_sensor == "alive"
        assert parallel.target_sensor == "counter"
        assert len(parallel) == min(
            len(corpus["alive"].sentences), len(corpus["counter"].sentences)
        )


class TestParallelCorpus:
    def test_mismatched_configs_rejected(self):
        seq = EventSequence("s1", ["a", "b"] * 20)
        lang_a = SensorLanguage.fit(seq, LanguageConfig(word_size=3, sentence_length=4))
        lang_b = SensorLanguage.fit(seq, LanguageConfig(word_size=4, sentence_length=4))
        with pytest.raises(ValueError, match="identical language configs"):
            ParallelCorpus.from_languages(lang_a, lang_b)

    def test_from_sentences_truncates_to_shorter(self):
        corpus = ParallelCorpus.from_sentences(
            "a", "b", [("x",), ("y",)], [("1",)]
        )
        assert len(corpus) == 1
        assert corpus.source_sentences == [("x",)]
        assert corpus.target_sentences == [("1",)]
