"""Tests for sensor-language statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    EventSequence,
    LanguageConfig,
    SensorLanguage,
    language_statistics,
    type_token_ratio,
    word_entropy,
)


class TestWordEntropy:
    def test_uniform_two_words_is_one_bit(self):
        assert word_entropy(["a", "b"]) == pytest.approx(1.0)

    def test_single_word_is_zero(self):
        assert word_entropy(["a"] * 50) == 0.0

    def test_empty(self):
        assert word_entropy([]) == 0.0

    def test_uniform_k_words_is_log2_k(self):
        words = [f"w{i}" for i in range(8)]
        assert word_entropy(words) == pytest.approx(3.0)


class TestTypeTokenRatio:
    def test_all_distinct(self):
        assert type_token_ratio(["a", "b", "c"]) == 1.0

    def test_all_same(self):
        assert type_token_ratio(["a"] * 10) == 0.1

    def test_empty(self):
        assert type_token_ratio([]) == 0.0


class TestLanguageStatistics:
    def make_language(self, events):
        config = LanguageConfig(word_size=4, word_stride=1, sentence_length=4, sentence_stride=4)
        return SensorLanguage.fit(EventSequence("sX", events), config)

    def test_trivial_language_flagged(self):
        # Mostly constant with one blip -> near-zero entropy.
        events = ["off"] * 100 + ["on"] + ["off"] * 100
        stats = language_statistics(self.make_language(events))
        assert stats.is_trivial()
        assert stats.most_common_fraction > 0.8

    def test_rich_language_not_trivial(self):
        events = ["on", "off", "off", "on", "off"] * 40
        stats = language_statistics(self.make_language(events))
        assert not stats.is_trivial()
        assert stats.vocabulary_size > 2

    def test_fields_consistent(self):
        events = ["a", "b"] * 40
        stats = language_statistics(self.make_language(events))
        assert stats.sensor == "sX"
        assert stats.num_sentences > 0
        assert 0 < stats.type_token_ratio <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=80))
def test_property_entropy_bounds(words):
    """0 <= H <= log2(vocabulary)."""
    entropy = word_entropy(words)
    assert entropy >= 0.0
    assert entropy <= math.log2(len(set(words))) + 1e-9
