"""Tests for EventSequence and MultivariateEventLog."""

from __future__ import annotations

import pytest

from repro.lang import EventSequence, MultivariateEventLog


class TestEventSequence:
    def test_events_are_stringified(self):
        seq = EventSequence("s1", [1, 0, 1])
        assert seq.events == ("1", "0", "1")

    def test_unique_states_sorted_alphanumerically(self):
        seq = EventSequence("s1", ["on", "OFF", "on", "idle"])
        assert seq.unique_states == ("OFF", "idle", "on")

    def test_cardinality(self):
        assert EventSequence("s1", ["a", "b", "a"]).cardinality == 2

    def test_is_constant(self):
        assert EventSequence("s1", ["x", "x", "x"]).is_constant()
        assert not EventSequence("s1", ["x", "y"]).is_constant()

    def test_slice(self):
        seq = EventSequence("s1", list("abcdef"))
        assert seq.slice(2, 4).events == ("c", "d")
        assert seq.slice(2, 4).sensor == "s1"

    def test_indexing_and_iteration(self):
        seq = EventSequence("s1", ["a", "b", "c"])
        assert seq[1] == "b"
        assert list(seq) == ["a", "b", "c"]
        assert isinstance(seq[0:2], EventSequence)


class TestMultivariateEventLog:
    def test_from_mapping(self):
        log = MultivariateEventLog.from_mapping({"a": ["x", "y"], "b": ["1", "2"]})
        assert log.sensors == ["a", "b"]
        assert log.num_samples == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="not aligned"):
            MultivariateEventLog.from_mapping({"a": ["x"], "b": ["1", "2"]})

    def test_duplicate_sensor_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultivariateEventLog(
                [EventSequence("a", ["x"]), EventSequence("a", ["y"])]
            )

    def test_slice_preserves_all_sensors(self):
        log = MultivariateEventLog.from_mapping({"a": list("abcd"), "b": list("wxyz")})
        sliced = log.slice(1, 3)
        assert sliced.num_samples == 2
        assert sliced["b"].events == ("x", "y")

    def test_select_subset_and_order(self):
        log = MultivariateEventLog.from_mapping(
            {"a": ["1"], "b": ["2"], "c": ["3"]}
        )
        assert log.select(["c", "a"]).sensors == ["c", "a"]

    def test_select_unknown_sensor(self):
        log = MultivariateEventLog.from_mapping({"a": ["1"]})
        with pytest.raises(KeyError):
            log.select(["nope"])

    def test_cardinalities(self):
        log = MultivariateEventLog.from_mapping({"a": ["x", "x"], "b": ["1", "2"]})
        assert log.cardinalities() == {"a": 1, "b": 2}

    def test_csv_roundtrip(self, tmp_path):
        log = MultivariateEventLog.from_mapping(
            {"a": ["on", "off"], "b": ["status 1", "status 2"]}
        )
        path = log.to_csv(tmp_path / "log.csv")
        loaded = MultivariateEventLog.from_csv(path)
        assert loaded.sensors == log.sensors
        assert loaded["b"].events == log["b"].events

    def test_contains_and_getitem(self):
        log = MultivariateEventLog.from_mapping({"a": ["1"]})
        assert "a" in log and "z" not in log
        assert log["a"].sensor == "a"

    def test_empty_log(self):
        log = MultivariateEventLog([])
        assert log.num_samples == 0
        assert log.sensors == []
