"""Property-based tests for event-log containers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import EventSequence, MultivariateEventLog

STATES = st.sampled_from(["on", "off", "idle"])
COLUMN = st.lists(STATES, min_size=1, max_size=40)


@settings(max_examples=50, deadline=None)
@given(COLUMN, st.data())
def test_property_slice_composition(events, data):
    """log.slice(a, b).slice(c, d) == log.slice(a+c, a+d)."""
    log = MultivariateEventLog.from_mapping({"s": events})
    a = data.draw(st.integers(0, len(events)))
    b = data.draw(st.integers(a, len(events)))
    inner_len = b - a
    c = data.draw(st.integers(0, inner_len))
    d = data.draw(st.integers(c, inner_len))
    nested = log.slice(a, b).slice(c, d)
    direct = log.slice(a + c, a + d)
    assert nested["s"].events == direct["s"].events


@settings(max_examples=50, deadline=None)
@given(COLUMN)
def test_property_cardinality_matches_set(events):
    sequence = EventSequence("s", events)
    assert sequence.cardinality == len(set(sequence.events))
    assert sequence.is_constant() == (sequence.cardinality <= 1)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), COLUMN, min_size=1, max_size=4))
def test_property_select_preserves_content(columns):
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        shortest = min(lengths)
        columns = {k: v[:shortest] for k, v in columns.items()}
    log = MultivariateEventLog.from_mapping(columns)
    names = sorted(columns)
    selected = log.select(names)
    for name in names:
        assert selected[name].events == log[name].events


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.lists(STATES, min_size=1, max_size=20),
        min_size=1,
        max_size=3,
    )
)
def test_property_csv_roundtrip(columns):
    import tempfile
    from pathlib import Path

    shortest = min(len(v) for v in columns.values())
    columns = {k: v[:shortest] for k, v in columns.items()}
    log = MultivariateEventLog.from_mapping(columns)
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "log.csv"
        log.to_csv(path)
        loaded = MultivariateEventLog.from_csv(path)
    assert loaded.sensors == log.sensors
    for name in log.sensors:
        assert loaded[name].events == log[name].events