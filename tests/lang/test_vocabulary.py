"""Tests for the token vocabulary."""

from __future__ import annotations

import numpy as np

from repro.lang import BOS, EOS, PAD, UNK, Vocabulary


class TestVocabulary:
    def test_specials_have_fixed_ids(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1
        assert vocab.eos_id == 2
        assert vocab.unk_id == 3
        assert vocab.word_of(0) == PAD
        assert vocab.word_of(3) == UNK

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("abba")
        second = vocab.add("abba")
        assert first == second
        assert len(vocab) == 5

    def test_from_sentences_first_seen_order(self):
        vocab = Vocabulary.from_sentences([("b", "a"), ("a", "c")])
        assert vocab.words() == ["b", "a", "c"]

    def test_content_size_excludes_specials(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.content_size == 2
        assert len(vocab) == 6

    def test_encode_unknown_maps_to_unk(self):
        vocab = Vocabulary(["x"])
        ids = vocab.encode(["x", "zzz"])
        assert ids[1] == vocab.unk_id

    def test_encode_with_eos(self):
        vocab = Vocabulary(["x"])
        ids = vocab.encode(["x"], add_eos=True)
        assert list(ids) == [4, vocab.eos_id]
        assert ids.dtype == np.int64

    def test_decode_strips_specials_by_default(self):
        vocab = Vocabulary(["x"])
        assert vocab.decode([vocab.bos_id, 4, vocab.eos_id]) == ["x"]
        assert vocab.decode([vocab.bos_id, 4], strip_specials=False) == [BOS, "x"]

    def test_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab
        assert EOS in vocab
        assert "nope" not in vocab
