"""Bit-identity of the columnar ("codes") and legacy ("strings") paths.

The integer word keys are a positional base-B packing of the interned
code window, so they are bijective with the encrypted word strings.
These tests assert the equivalences the refactor promises: identical
sentences after decoding, identical vocabularies, identical BLEU
scores, identical MVRG edge weights — and identical results across
serial, parallel and cached builds of the codes path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import MultivariateRelationshipGraph
from repro.lang import (
    LanguageConfig,
    MultiLanguageCorpus,
    MultivariateEventLog,
    ParallelCorpus,
    SensorLanguage,
    Vocabulary,
)
from repro.translation.bleu import corpus_bleu
from repro.translation.ngram import NGramTranslator
from repro.translation.seq2seq import NMTConfig, Seq2SeqTranslator


@pytest.fixture(scope="module")
def log(related_log):
    return related_log


@pytest.fixture(scope="module")
def config(tiny_language_config):
    return tiny_language_config


@pytest.fixture(scope="module")
def corpora(log, config):
    codes = MultiLanguageCorpus.fit(log, config, representation="codes")
    strings = MultiLanguageCorpus.fit(log, config, representation="strings")
    return codes, strings


class TestSentenceEquivalence:
    def test_decoded_code_sentences_equal_string_sentences(self, corpora):
        codes, strings = corpora
        assert codes.sensors == strings.sensors
        for name in codes.sensors:
            assert codes[name].decoded_sentences() == strings[name].sentences

    def test_word_key_decoding_is_bijective(self, corpora):
        codes, _ = corpora
        for name in codes.sensors:
            language = codes[name]
            seen: dict[object, str] = {}
            decoded: dict[str, object] = {}
            for sentence in language.sentences:
                for word in sentence:
                    rendered = language.decode_word(word)
                    assert seen.setdefault(word, rendered) == rendered
                    assert decoded.setdefault(rendered, word) == word

    def test_unknown_states_agree_across_paths(self, log, config):
        codes = MultiLanguageCorpus.fit(log, config, representation="codes")
        strings = MultiLanguageCorpus.fit(log, config, representation="strings")
        novel = MultivariateEventLog.from_mapping(
            {
                name: (list(log[name])[:100] + ["NOVEL-STATE"] * 40)
                for name in log.sensors
            }
        )
        for name in codes.sensors:
            from_codes = [
                codes[name].decode_sentence(s)
                for s in codes[name].sentences_for(novel[name])
            ]
            assert from_codes == strings[name].sentences_for(novel[name])


class TestVocabularyEquivalence:
    def test_sizes_and_id_assignment_match(self, corpora):
        codes, strings = corpora
        for name in codes.sensors:
            code_vocab = codes[name].vocabulary
            string_vocab = strings[name].vocabulary
            assert len(code_vocab) == len(string_vocab)
            assert code_vocab.content_size == string_vocab.content_size
            # First-seen order is preserved, so decoding the id-ordered
            # code words reproduces the id-ordered string words.
            decoded = [codes[name].decode_word(w) for w in code_vocab.words()]
            assert decoded == string_vocab.words()

    def test_sentence_encoding_produces_identical_ids(self, corpora):
        codes, strings = corpora
        for name in codes.sensors:
            code_vocab = codes[name].vocabulary
            string_vocab = strings[name].vocabulary
            for cs, ss in zip(codes[name].sentences, strings[name].sentences):
                np.testing.assert_array_equal(
                    code_vocab.encode(cs, add_eos=True),
                    string_vocab.encode(ss, add_eos=True),
                )


class TestScoreEquivalence:
    def test_ngram_bleu_identical(self, corpora, log, config):
        codes, strings = corpora
        train, dev = log.slice(0, 480), log.slice(480, 600)
        for source, target in (("sA", "sB"), ("sB", "sA"), ("sA", "sC")):
            scores = []
            for corpus in corpora:
                language = {
                    name: SensorLanguage.from_encoder(
                        corpus[name].encoder, train[name], config, corpus.representation
                    )
                    for name in (source, target)
                }
                parallel = ParallelCorpus.from_languages(
                    language[source], language[target]
                )
                model = NGramTranslator().fit(parallel)
                dev_src = language[source].sentences_for(dev[source])
                dev_tgt = language[target].sentences_for(dev[target])
                translations = model.translate(dev_src)
                scores.append(corpus_bleu(translations, dev_tgt, smooth=True))
            assert scores[0] == scores[1]

    def test_seq2seq_training_identical(self, corpora):
        codes, strings = corpora
        losses = []
        digests = []
        for corpus in corpora:
            parallel = ParallelCorpus.from_languages(corpus["sA"], corpus["sB"])
            model = Seq2SeqTranslator(
                NMTConfig(
                    embedding_size=8,
                    hidden_size=8,
                    num_layers=1,
                    dropout=0.0,
                    training_steps=5,
                    batch_size=4,
                    seed=3,
                )
            ).fit(parallel)
            losses.append(model.loss_history)
            digests.append(model.weights_digest())
        assert losses[0] == losses[1]
        assert digests[0] == digests[1]


class TestGraphEquivalence:
    def build(self, log, config, **kwargs):
        return MultivariateRelationshipGraph.build(
            log.slice(0, 480), log.slice(480, 600), config=config, **kwargs
        )

    def test_edge_weights_identical_across_representations(self, log, config):
        codes = self.build(log, config, representation="codes")
        strings = self.build(log, config, representation="strings")
        assert codes.scores() == strings.scores()

    def test_serial_parallel_cached_builds_identical(self, log, config, tmp_path):
        serial = self.build(log, config)
        parallel = self.build(log, config, n_jobs=2, backend="thread")
        cold = self.build(log, config, store=tmp_path / "cache")
        warm = self.build(log, config, store=tmp_path / "cache")
        assert serial.scores() == parallel.scores() == cold.scores() == warm.scores()
        assert not cold.build_report.cached
        assert len(warm.build_report.cached) == len(serial.scores())
        assert not warm.build_report.completed


class TestParallelCorpusGuards:
    def test_mixed_representations_refused(self, corpora):
        codes, strings = corpora
        with pytest.raises(ValueError):
            ParallelCorpus.from_languages(codes["sA"], strings["sB"])
