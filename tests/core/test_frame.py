"""Unit tests for the columnar event frame."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import EventFrame
from repro.lang import EventSequence, MultivariateEventLog


def small_log() -> MultivariateEventLog:
    return MultivariateEventLog.from_mapping(
        {
            "sA": ["on", "off", "on", "on", "off", "on"],
            "sB": ["x", "x", "y", "x", "y", "y"],
        }
    )


class TestEventFrame:
    def test_built_once_at_ingest(self):
        log = small_log()
        frame = log.frame
        assert isinstance(frame, EventFrame)
        assert frame.sensors == ("sA", "sB")
        assert frame.codes.shape == (2, 6)
        assert frame.codes.dtype == np.uint16

    def test_sequences_view_frame_rows(self):
        log = small_log()
        for name in log.sensors:
            assert np.shares_memory(log[name].codes, log.frame.codes)

    def test_row_matches_sequence_codes(self):
        log = small_log()
        assert np.array_equal(log.frame.row("sA"), log["sA"].codes)

    def test_slice_is_a_view(self):
        log = small_log()
        window = log.frame.slice(1, 4)
        assert window.num_samples == 3
        assert np.shares_memory(window.codes, log.frame.codes)

    def test_select_restricts_sensors(self):
        frame = small_log().frame.select(["sB"])
        assert frame.sensors == ("sB",)
        assert frame.codes.shape == (1, 6)
        with pytest.raises(KeyError):
            small_log().frame.select(["nope"])

    def test_mismatched_shape_rejected(self):
        frame = small_log().frame
        with pytest.raises(ValueError):
            EventFrame(("sA",), frame.codes, frame.tables)

    def test_row_digest_changes_with_data(self):
        log = small_log()
        other = MultivariateEventLog.from_mapping(
            {
                "sA": ["on", "off", "on", "on", "off", "off"],
                "sB": ["x", "x", "y", "x", "y", "y"],
            }
        )
        assert log.frame.row_digest("sB") == other.frame.row_digest("sB")
        assert log.frame.row_digest("sA") != other.frame.row_digest("sA")
        assert log.frame.digest() != other.frame.digest()

    def test_log_pickle_roundtrips_through_frame(self):
        log = small_log()
        clone = pickle.loads(pickle.dumps(log))
        assert clone.sensors == log.sensors
        assert list(clone["sA"]) == list(log["sA"])
        assert clone.frame.digest() == log.frame.digest()

    def test_sequence_getitem_decodes_lazily(self):
        log = small_log()
        seq = log["sA"]
        assert seq[0] == "on"
        assert seq[1] == "off"
        window = seq[1:4]
        assert isinstance(window, EventSequence)
        assert list(window) == ["off", "on", "on"]
        assert np.shares_memory(window.codes, seq.codes)
