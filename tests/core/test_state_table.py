"""Unit tests for the interned state table and word packing."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import UNKNOWN_STATE, StateTable, pack_ngrams


class TestStateTable:
    def test_from_events_sorts_and_dedupes(self):
        table = StateTable.from_events("s1", ["on", "off", "on", "idle", "off"])
        assert table.states == ("idle", "off", "on")
        assert table.cardinality == 3
        assert table.unknown_code == 3

    def test_codes_follow_alphanumeric_order(self):
        table = StateTable.from_events("s1", ["b", "a", "c"])
        assert [table.code_of(s) for s in ("a", "b", "c")] == [0, 1, 2]

    def test_unknown_state_gets_unknown_code(self):
        table = StateTable.from_events("s1", ["a", "b"])
        assert table.code_of("zzz") == table.unknown_code
        assert table.state_of(table.unknown_code) == UNKNOWN_STATE

    def test_encode_decode_roundtrip(self):
        events = ["on", "off", "on", "on", "idle"]
        table = StateTable.from_events("s1", events)
        codes = table.encode(events)
        assert codes.dtype == np.uint16
        assert table.decode(codes) == events

    def test_unsorted_states_rejected(self):
        with pytest.raises(ValueError):
            StateTable("s1", ("b", "a"))

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            StateTable("s1", ("a", "a"))

    def test_recode_lookup_translates_between_tables(self):
        train = StateTable.from_events("s1", ["a", "b", "c"])
        test = StateTable.from_events("s1", ["b", "zzz"])
        lookup = train.recode_lookup(test)
        # test codes: b=0, zzz=1, unknown=2
        assert lookup[0] == train.code_of("b")
        assert lookup[1] == train.unknown_code  # novel state
        assert lookup[2] == train.unknown_code  # the other table's unknown

    def test_equality_and_hash(self):
        one = StateTable.from_events("s1", ["a", "b"])
        two = StateTable.from_events("s1", ["b", "a"])
        other = StateTable.from_events("s2", ["a", "b"])
        assert one == two
        assert hash(one) == hash(two)
        assert one != other

    def test_pickle_roundtrip(self):
        table = StateTable.from_events("s1", ["on", "off"])
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.code_of("on") == table.code_of("on")


class TestPackNgrams:
    def test_packing_is_positional_most_significant_first(self):
        windows = np.array([[1, 0, 2]], dtype=np.int64)
        packed = pack_ngrams(windows, base=3)
        assert packed.tolist() == [1 * 9 + 0 * 3 + 2]

    def test_packing_is_injective(self):
        base = 4
        rng = np.random.default_rng(0)
        windows = rng.integers(0, base, size=(500, 5))
        packed = pack_ngrams(windows, base)
        seen = {}
        for row, key in zip(windows.tolist(), packed.tolist()):
            assert seen.setdefault(key, row) == row
        assert len(set(packed.tolist())) == len({tuple(r) for r in windows.tolist()})

    def test_overflow_returns_none(self):
        windows = np.zeros((1, 64), dtype=np.int64)
        assert pack_ngrams(windows, base=10) is None

    def test_empty_windows(self):
        windows = np.zeros((0, 4), dtype=np.int64)
        assert pack_ngrams(windows, base=3).shape == (0,)
