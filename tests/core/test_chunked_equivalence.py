"""Chunked ingest must be bit-identical to the in-memory build.

The streaming refactor's core contract: for any log and any chunk
size, folding chunks through :class:`~repro.core.EventFrameBuilder`
produces exactly the frame a one-shot build would — same code matrix,
same state tables, same digests — and therefore the same corpus
fingerprints, cache keys, MVRG edge weights and anomaly scores.
Hypothesis searches for logs that break the frame-level identity;
deterministic end-to-end cases pin the pipeline-level consequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EventFrameBuilder, StateTable
from repro.detection.online import OnlineAnomalyDetector
from repro.lang.events import MultivariateEventLog
from repro.pipeline.artifacts import (
    combine_fingerprints,
    fingerprint_log,
    fingerprint_sequence,
)
from repro.pipeline.framework import AnalyticsFramework
from repro.pipeline.stages.corpus import CorpusStage
from repro.pipeline.stages.encrypt import EncryptStage
from repro.scenarios.harness import harness_framework_config

SETTINGS = settings(max_examples=50, deadline=None)

#: The issue's chunk-size grid; ``None`` is the whole-log fast case.
CHUNK_SIZES = (1, 7, 64, None)

# States deliberately unsorted relative to arrival order so later
# chunks routinely surface alphabetically-earlier states (the case
# where growable interning must recode at finalisation).
STATE_POOL = ("ON", "OFF", "status 3", "a", "Z", "0")


@st.composite
def logs(draw):
    """Random ``{sensor: [state, ...]}`` mappings, including empties."""
    num_sensors = draw(st.integers(1, 4))
    num_samples = draw(st.integers(0, 60))
    column = st.lists(
        st.sampled_from(STATE_POOL), min_size=num_samples, max_size=num_samples
    )
    return {f"s{index}": draw(column) for index in range(num_sensors)}


def iter_chunks(mapping: dict, size: int | None):
    """Split a column mapping into successive row blocks of ``size``."""
    length = len(next(iter(mapping.values()))) if mapping else 0
    if size is None or length == 0:
        yield mapping
        return
    for start in range(0, length, size):
        yield {name: column[start : start + size] for name, column in mapping.items()}


def build_chunked(mapping: dict, size: int | None):
    builder = EventFrameBuilder()
    for chunk in iter_chunks(mapping, size):
        builder.append(chunk)
    return builder.finalize()


class TestFrameEquivalence:
    @SETTINGS
    @given(mapping=logs(), size=st.sampled_from(CHUNK_SIZES))
    def test_chunked_frame_matches_one_shot(self, mapping, size):
        one_shot = MultivariateEventLog.from_mapping(mapping).frame
        chunked = build_chunked(mapping, size)
        assert chunked.sensors == one_shot.sensors
        assert np.array_equal(chunked.codes, one_shot.codes)
        assert chunked.tables == one_shot.tables
        assert chunked.digest() == one_shot.digest()

    @SETTINGS
    @given(mapping=logs(), size=st.sampled_from(CHUNK_SIZES))
    def test_rolling_digests_preseeded_and_correct(self, mapping, size):
        chunked = build_chunked(mapping, size)
        rolling = dict(chunked._row_digests)
        assert set(rolling) == set(chunked.sensors)
        for sensor in chunked.sensors:
            fresh = MultivariateEventLog.from_mapping(mapping).frame
            assert rolling[sensor] == fresh.row_digest(sensor)

    @SETTINGS
    @given(mapping=logs(), size=st.sampled_from(CHUNK_SIZES))
    def test_log_from_chunks_matches_from_mapping(self, mapping, size):
        via_chunks = MultivariateEventLog.from_chunks(iter_chunks(mapping, size))
        direct = MultivariateEventLog.from_mapping(mapping)
        assert via_chunks.sensors == direct.sensors
        assert via_chunks.num_samples == direct.num_samples
        for name in direct.sensors:
            assert via_chunks[name].events == direct[name].events

    def test_builder_rejects_divergent_sensors(self):
        builder = EventFrameBuilder()
        builder.append({"a": ["x"], "b": ["y"]})
        with pytest.raises(ValueError, match="diverge"):
            builder.append({"a": ["x"], "c": ["y"]})

    def test_builder_rejects_ragged_chunk(self):
        builder = EventFrameBuilder()
        with pytest.raises(ValueError, match="not aligned"):
            builder.append({"a": ["x", "y"], "b": ["y"]})

    def test_builder_single_use(self):
        builder = EventFrameBuilder()
        builder.append({"a": ["x"]})
        builder.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            builder.append({"a": ["y"]})
        with pytest.raises(RuntimeError, match="finalized"):
            builder.finalize()

    def test_empty_chunk_still_fixes_sensors(self):
        builder = EventFrameBuilder()
        builder.append({"a": [], "b": []})
        frame = builder.finalize()
        assert frame.sensors == ("a", "b")
        assert frame.num_samples == 0


class TestStateTableGrowth:
    @SETTINGS
    @given(
        chunks=st.lists(
            st.lists(st.sampled_from(STATE_POOL), max_size=10), min_size=1, max_size=5
        )
    )
    def test_extend_keeps_existing_codes_stable(self, chunks):
        table = StateTable.from_events("s", chunks[0])
        for chunk in chunks[1:]:
            grown = table.extend(chunk)
            for state in table.states:
                assert grown.code_of(state) == table.code_of(state)
            table = grown

    @SETTINGS
    @given(
        chunks=st.lists(
            st.lists(st.sampled_from(STATE_POOL), max_size=10), min_size=1, max_size=5
        )
    )
    def test_canonical_matches_one_shot_fit(self, chunks):
        table = StateTable.from_events("s", chunks[0])
        for chunk in chunks[1:]:
            table = table.extend(chunk)
        canonical, recode = table.canonical()
        union = [state for chunk in chunks for state in chunk]
        assert canonical == StateTable.from_events("s", union)
        if recode is None:
            assert table.states == canonical.states
        else:
            for state in table.states:
                assert recode[table.code_of(state)] == canonical.code_of(state)
            assert recode[table.unknown_code] == canonical.unknown_code

    def test_extend_with_nothing_new_returns_self(self):
        table = StateTable.from_events("s", ["a", "b"])
        assert table.extend(["b", "a", "a"]) is table


class TestFingerprintEquivalence:
    @SETTINGS
    @given(mapping=logs(), size=st.sampled_from(CHUNK_SIZES))
    def test_fingerprint_log_matches_sequence_combination(self, mapping, size):
        # fingerprint_log delegates to the frame digest; the historical
        # definition (combining per-sequence fingerprints) must keep
        # producing the same bytes or every cache key changes.
        log = MultivariateEventLog.from_chunks(iter_chunks(mapping, size))
        assert fingerprint_log(log) == combine_fingerprints(
            *(fingerprint_sequence(seq) for seq in log)
        )
        assert fingerprint_log(log) == log.frame.digest()

    @SETTINGS
    @given(mapping=logs(), size=st.sampled_from((1, 7, 64)))
    def test_stage_fingerprints_identical_chunked_vs_resident(self, mapping, size):
        chunked = MultivariateEventLog.from_chunks(iter_chunks(mapping, size))
        resident = MultivariateEventLog.from_mapping(mapping)
        context = {"training_log": chunked}
        baseline = {"training_log": resident}
        assert EncryptStage().fingerprint(context) == EncryptStage().fingerprint(
            baseline
        )


@pytest.fixture(scope="module")
def paired_csvs(tmp_path_factory):
    """Train/dev/test CSVs of a 3-sensor log with real dependencies."""
    rng = np.random.default_rng(42)
    total = 400
    driver = rng.integers(0, 3, size=total)
    # b relabels a sample-for-sample with sparse noise, so the a<->b
    # translations score high-but-imperfect BLEU (inside the harness
    # detection range) and some test windows actually break.
    follower = (driver + (rng.random(total) < 0.05)) % 3
    noise = rng.integers(0, 2, size=total)
    log = MultivariateEventLog.from_mapping(
        {
            "a": [f"v{int(v)}" for v in driver],
            "b": [f"v{int(v)}" for v in follower],
            "c": [f"n{int(v)}" for v in noise],
        }
    )
    directory = tmp_path_factory.mktemp("chunked-equivalence")
    paths = {}
    for name, part in (
        ("train", log.slice(0, 240)),
        ("dev", log.slice(240, 320)),
        ("test", log.slice(320, 400)),
    ):
        paths[name] = part.to_csv(directory / f"{name}.csv")
    return paths


def _fit(train, dev, cache_dir=None):
    framework = AnalyticsFramework(harness_framework_config())
    framework.fit(train, dev, cache_dir=cache_dir)
    return framework


class TestPipelineEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_mvrg_and_scores_identical(self, paired_csvs, chunk_size):
        resident = {
            name: MultivariateEventLog.from_csv(path)
            for name, path in paired_csvs.items()
        }
        chunked = {
            name: MultivariateEventLog.from_csv(path, chunk_size=chunk_size)
            for name, path in paired_csvs.items()
        }
        baseline = _fit(resident["train"], resident["dev"])
        streamed = _fit(chunked["train"], chunked["dev"])

        assert streamed.graph.scores() == baseline.graph.scores()

        expected = baseline.detect(resident["test"]).anomaly_scores
        actual = streamed.detect(chunked["test"]).anomaly_scores
        assert np.array_equal(actual, expected)

    def test_cold_then_warm_cache_across_ingest_paths(self, paired_csvs, tmp_path):
        cache = tmp_path / "cache"
        chunked_train = MultivariateEventLog.from_csv(
            paired_csvs["train"], chunk_size=7
        )
        chunked_dev = MultivariateEventLog.from_csv(paired_csvs["dev"], chunk_size=7)
        cold = _fit(chunked_train, chunked_dev, cache_dir=cache)
        assert cold.build_report.num_trained > 0
        assert not cold.build_report.cached

        resident_train = MultivariateEventLog.from_csv(paired_csvs["train"])
        resident_dev = MultivariateEventLog.from_csv(paired_csvs["dev"])
        warm = _fit(resident_train, resident_dev, cache_dir=cache)
        # Chunked and in-memory ingest hash to the same cache keys, so
        # the warm build restores every pair and trains nothing.
        assert warm.build_report.num_trained == 0
        assert len(warm.build_report.cached) == cold.build_report.num_trained
        assert warm.graph.scores() == cold.graph.scores()


class TestOnlineStreamingEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_stream_from_reader_matches_per_sample_push(
        self, paired_csvs, chunk_size
    ):
        logs = {
            name: MultivariateEventLog.from_csv(path)
            for name, path in paired_csvs.items()
        }
        framework = _fit(logs["train"], logs["dev"])
        score_range = framework.config.detection_range
        test = logs["test"]

        per_sample = OnlineAnomalyDetector(framework.graph, score_range=score_range)
        pushed = []
        for t in range(test.num_samples):
            sample = {name: test[name].events[t] for name in test.sensors}
            pushed.extend(per_sample.push(sample))

        from repro.datasets.io import iter_event_chunks

        streamed_detector = OnlineAnomalyDetector(
            framework.graph, score_range=score_range
        )
        streamed = list(
            streamed_detector.stream_from_reader(
                iter_event_chunks(paired_csvs["test"], chunk_size)
            )
        )
        assert pushed, "test period must emit at least one window"
        assert streamed == pushed
