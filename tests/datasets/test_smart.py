"""Tests for the SMART attribute catalogue."""

from __future__ import annotations

from repro.datasets import (
    BARELY_CHANGING_ATTRIBUTES,
    KEY_FAILURE_ATTRIBUTES,
    SMART_ATTRIBUTES,
    cumulative_attribute_names,
    framework_attribute_names,
    raw_attribute_names,
)


class TestCatalogue:
    def test_twenty_raw_attributes(self):
        assert len(SMART_ATTRIBUTES) == 20
        assert len(raw_attribute_names()) == 20

    def test_fourteen_cumulative_attributes(self):
        assert len(cumulative_attribute_names()) == 14

    def test_sixteen_framework_attributes(self):
        names = framework_attribute_names()
        assert len(names) == 16
        for smart_id in BARELY_CHANGING_ATTRIBUTES:
            assert f"smart_{smart_id}" not in names

    def test_key_attributes_match_table3(self):
        assert set(KEY_FAILURE_ATTRIBUTES) == {192, 187, 198, 197, 5}
        # All key attributes survive the quiet-feature filter.
        framework = set(framework_attribute_names())
        for smart_id in KEY_FAILURE_ATTRIBUTES:
            assert f"smart_{smart_id}" in framework

    def test_ids_unique(self):
        ids = [a.smart_id for a in SMART_ATTRIBUTES]
        assert len(ids) == len(set(ids))

    def test_column_naming(self):
        attribute = SMART_ATTRIBUTES[0]
        assert attribute.column == f"smart_{attribute.smart_id}"
