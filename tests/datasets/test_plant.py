"""Tests for the plant simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.lang import filter_constant_sensors


class TestPlantConfig:
    def test_paper_defaults(self):
        config = PlantConfig()
        assert config.num_sensors == 128
        assert config.days == 30
        assert config.samples_per_day == 1440
        assert config.anomaly_days == (21, 28)
        assert config.total_samples == 43_200

    def test_validation(self):
        with pytest.raises(ValueError):
            PlantConfig(num_sensors=2)
        with pytest.raises(ValueError):
            PlantConfig(days=5, anomaly_days=(21,))


class TestGeneratedDataset:
    def test_shape(self, plant_dataset):
        config = plant_dataset.config
        assert plant_dataset.log.num_sensors == config.num_sensors
        assert plant_dataset.log.num_samples == config.total_samples

    def test_mostly_binary_cardinalities(self, plant_dataset):
        """~97% of the paper's sensors are binary; a few go up to 7."""
        cards = list(plant_dataset.log.cardinalities().values())
        binary_fraction = sum(1 for c in cards if c <= 2) / len(cards)
        assert binary_fraction > 0.7
        assert max(cards) <= 7

    def test_contains_constant_sensors_to_filter(self, plant_dataset):
        _, discarded = filter_constant_sensors(plant_dataset.log)
        assert len(discarded) >= 1

    def test_component_assignment_total(self, plant_dataset):
        assert set(plant_dataset.component_of) == set(plant_dataset.log.sensors)
        components = set(plant_dataset.component_of.values())
        assert len(components) == plant_dataset.config.num_components

    def test_deterministic_generation(self):
        a = generate_plant_dataset(PlantConfig.small(seed=3))
        b = generate_plant_dataset(PlantConfig.small(seed=3))
        for sensor in a.log.sensors:
            assert a.log[sensor].events == b.log[sensor].events

    def test_different_seeds_differ(self):
        a = generate_plant_dataset(PlantConfig.small(seed=3))
        b = generate_plant_dataset(PlantConfig.small(seed=4))
        assert any(a.log[s].events != b.log[s].events for s in a.log.sensors)

    def test_disturbed_sensors_recorded_for_every_special_day(self, plant_dataset):
        for day in plant_dataset.anomaly_days + plant_dataset.precursor_days:
            assert day in plant_dataset.disturbed_sensors
            assert len(plant_dataset.disturbed_sensors[day]) >= 2

    def test_anomaly_disturbs_more_sensors_than_precursor(self, plant_dataset):
        anomaly_count = len(plant_dataset.disturbed_sensors[plant_dataset.anomaly_days[0]])
        precursor_count = len(plant_dataset.disturbed_sensors[plant_dataset.precursor_days[0]])
        assert anomaly_count > precursor_count

    def test_anomaly_preserves_marginals(self, plant_dataset):
        """Disturbance shuffles timing, not vocabulary: an anomalous
        day's state set matches a normal day's for disturbed sensors
        (the Figure 2 'visually indistinguishable' property)."""
        day_anomalous = plant_dataset.day_slice(plant_dataset.anomaly_days[0])
        day_normal = plant_dataset.day_slice(15)
        sensor = plant_dataset.disturbed_sensors[plant_dataset.anomaly_days[0]][0]
        assert set(day_anomalous[sensor].events) <= set(plant_dataset.log[sensor].events)
        assert day_anomalous[sensor].cardinality <= plant_dataset.log[sensor].cardinality


class TestSplitsAndSlices:
    def test_day_slice_bounds(self, plant_dataset):
        day = plant_dataset.day_slice(1)
        assert day.num_samples == plant_dataset.config.samples_per_day

    def test_split_proportions(self, plant_dataset):
        train, dev, test = plant_dataset.split(10, 3)
        per_day = plant_dataset.config.samples_per_day
        assert train.num_samples == 10 * per_day
        assert dev.num_samples == 3 * per_day
        assert test.num_samples == 17 * per_day

    def test_split_leaving_no_test_rejected(self, plant_dataset):
        with pytest.raises(ValueError):
            plant_dataset.split(20, 10)

    def test_test_day_labels(self, plant_dataset):
        labels = plant_dataset.test_day_labels(10, 3)
        assert set(labels) == set(range(14, 31))
        assert labels[21] and labels[28]
        assert not labels[15]
