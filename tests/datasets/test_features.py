"""Tests for the baseline feature matrix construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BackblazeConfig,
    baseline_feature_names,
    build_baseline_matrix,
    first_difference,
    generate_backblaze_dataset,
)


@pytest.fixture(scope="module")
def matrix():
    return build_baseline_matrix(generate_backblaze_dataset(BackblazeConfig.small()))


class TestFirstDifference:
    def test_leading_zero_preserves_alignment(self):
        series = np.array([5.0, 7.0, 7.0, 10.0])
        np.testing.assert_array_equal(first_difference(series), [0.0, 2.0, 0.0, 3.0])

    def test_empty_series(self):
        assert first_difference(np.array([])).size == 0

    def test_constant_series_all_zero(self):
        np.testing.assert_array_equal(
            first_difference(np.full(5, 3.0)), np.zeros(5)
        )


class TestBaselineMatrix:
    def test_34_columns(self, matrix):
        assert matrix.features.shape[1] == 34
        assert len(matrix.feature_names) == 34
        assert baseline_feature_names() == matrix.feature_names

    def test_one_row_per_drive_day(self, matrix):
        assert matrix.features.shape[0] == matrix.labels.shape[0]
        assert matrix.features.shape[0] == matrix.drive_of_row.shape[0]

    def test_one_failure_label_per_failed_drive(self, matrix):
        dataset = generate_backblaze_dataset(BackblazeConfig.small())
        assert matrix.labels.sum() == len(dataset.failed_serials)

    def test_failure_label_on_last_day(self, matrix):
        failed_rows = np.nonzero(matrix.labels == 1)[0]
        for row in failed_rows:
            drive = matrix.drive_of_row[row]
            last_row_of_drive = np.nonzero(matrix.drive_of_row == drive)[0][-1]
            assert row == last_row_of_drive

    def test_rows_for_drives_subsets(self, matrix):
        subset = matrix.rows_for_drives({0, 1})
        assert set(np.unique(subset.drive_of_row)) == {0, 1}
        assert subset.features.shape[1] == 34

    def test_diff_columns_match_manual_difference(self, matrix):
        dataset = generate_backblaze_dataset(BackblazeConfig.small())
        drive = dataset.drives[0]
        rows = matrix.rows_for_drives({0})
        column = matrix.feature_names.index("smart_9_diff")
        np.testing.assert_array_equal(
            rows.features[:, column], first_difference(drive.values["smart_9"])
        )
