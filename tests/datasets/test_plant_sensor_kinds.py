"""Tests for the plant simulator's sensor-kind mix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.lang import LanguageConfig, MultiLanguageCorpus


@pytest.fixture(scope="module")
def dataset():
    return generate_plant_dataset(
        PlantConfig(num_sensors=40, days=20, samples_per_day=96,
                    anomaly_days=(14,), precursor_days=(13,), num_components=4, seed=3)
    )


class TestSensorKinds:
    def test_constant_sensors_present(self, dataset):
        constants = [s.sensor for s in dataset.log if s.is_constant()]
        assert constants

    def test_rare_event_sensors_have_tiny_vocabularies(self, dataset):
        """The Figure 3b low-vocabulary tail exists: some non-constant
        sensors produce only a handful of distinct words."""
        config = LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8)
        corpus = MultiLanguageCorpus.fit(dataset.log, config)
        sizes = corpus.vocabulary_sizes()
        assert min(sizes.values()) <= 13
        assert max(sizes.values()) > 13

    def test_multistate_sensors_present(self, dataset):
        cards = dataset.log.cardinalities().values()
        assert max(cards) >= 3

    def test_event_counts_span_orders_of_magnitude(self, dataset):
        """Periodic sensors change state hundreds of times; rare-event
        sensors only a few times — the Figure 2 contrast."""
        changes = []
        for sequence in dataset.log:
            events = sequence.events
            changes.append(sum(a != b for a, b in zip(events, events[1:])))
        changes = [c for c in changes if c > 0]
        assert min(changes) < 20
        assert max(changes) > 200

    def test_custom_anomaly_days_respected(self, dataset):
        assert dataset.anomaly_days == (14,)
        assert 14 in dataset.disturbed_sensors
