"""Messy-input corpus for the chunked readers.

Every case in :mod:`repro.datasets.io`'s documented repair/reject
policy gets a concrete fixture: repairs (BOM, blank lines) must load
to exactly the clean file's content, rejections (ragged rows, header
problems, non-monotonic day columns, bad floats) must raise the
documented error class with an actionable message naming the file and
row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.backblaze import BackblazeConfig, BackblazeDataset, DriveTrace
from repro.datasets.io import (
    HeaderError,
    RaggedRowError,
    TimestampError,
    iter_drive_traces,
    iter_event_chunks,
    load_backblaze_dataset,
    save_backblaze_dataset,
)
from repro.lang.events import MultivariateEventLog

CLEAN = "a,b\nx,y\nx,z\nw,y\n"


def collect(path, chunk_size=None):
    chunks = list(iter_event_chunks(path, chunk_size))
    merged = {name: [] for name in chunks[0]}
    for chunk in chunks:
        for name, column in chunk.items():
            merged[name].extend(column)
    return merged


class TestEventChunkRepairs:
    def test_clean_file_baseline(self, tmp_path):
        path = tmp_path / "clean.csv"
        path.write_text(CLEAN)
        assert collect(path) == {"a": ["x", "x", "w"], "b": ["y", "z", "y"]}

    def test_bom_is_stripped(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes(b"\xef\xbb\xbf" + CLEAN.encode("utf-8"))
        # Repair: the BOM must not leak into the first sensor's name.
        assert collect(path) == {"a": ["x", "x", "w"], "b": ["y", "z", "y"]}

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a,b\nx,y\n\n\nx,z\n\nw,y\n")
        assert collect(path) == {"a": ["x", "x", "w"], "b": ["y", "z", "y"]}
        # The repair holds at every chunk size, including boundaries.
        for size in (1, 2, 64):
            assert collect(path, size) == {"a": ["x", "x", "w"], "b": ["y", "z", "y"]}

    def test_header_only_file_yields_empty_columns(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        assert collect(path) == {"a": [], "b": []}
        log = MultivariateEventLog.from_csv(path)
        assert log.sensors == ["a", "b"]
        assert log.num_samples == 0


class TestEventChunkRejections:
    def test_ragged_row_names_file_row_and_arity(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\nx,y\nx\n")
        with pytest.raises(RaggedRowError, match="ragged CSV row 3"):
            collect(path)
        with pytest.raises(ValueError, match="expected 2 column\\(s\\), got 1"):
            collect(path)

    def test_ragged_row_via_log_loader(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\nx,y\nx,y,z\n")
        with pytest.raises(ValueError, match="ragged"):
            MultivariateEventLog.from_csv(path, chunk_size=1)

    def test_duplicate_header_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("a,b,a\nx,y,z\n")
        with pytest.raises(HeaderError, match="duplicate header"):
            collect(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(HeaderError, match="missing or empty"):
            collect(path)

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = tmp_path / "clean.csv"
        path.write_text(CLEAN)
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_event_chunks(path, 0))


def _drive_dir(tmp_path, rows, name="drv1"):
    """A one-drive population directory with hand-written SMART rows."""
    (tmp_path / "manifest.json").write_text(
        '{"config": {"num_drives": 1, "days": 3, "failure_fraction": 0.5,'
        ' "silent_failure_fraction": 0.0, "ramp_days": 2,'
        ' "incident_rate": 0.01, "seed": 1},'
        ' "drives": [{"serial": "%s", "failed": false, "failure_day": null}]}'
        % name
    )
    (tmp_path / f"{name}.csv").write_text("day,smart_5\n" + rows)
    return tmp_path


class TestDriveStreamTimestamps:
    def test_clean_stream(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\n1,2.0\n2,3.0\n")
        (trace,) = list(iter_drive_traces(directory))
        assert trace.serial == "drv1"
        assert trace.values["smart_5"].tolist() == [1.0, 2.0, 3.0]

    def test_duplicate_day_rejected(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\n1,2.0\n1,3.0\n")
        with pytest.raises(TimestampError, match="duplicate timestamp day 1"):
            list(iter_drive_traces(directory))

    def test_out_of_order_day_rejected(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\n2,2.0\n1,3.0\n")
        with pytest.raises(TimestampError, match="out-of-order timestamp day 1"):
            list(iter_drive_traces(directory))

    def test_non_integer_day_rejected(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\nsoon,2.0\n")
        with pytest.raises(TimestampError, match="'soon' is not an integer"):
            list(iter_drive_traces(directory))

    def test_bad_float_names_column_and_row(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\n1,broken\n")
        with pytest.raises(ValueError, match="'smart_5'.*'broken' is not a number"):
            list(iter_drive_traces(directory))

    def test_ragged_smart_row_rejected(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\n1\n")
        with pytest.raises(RaggedRowError, match="ragged CSV row 3"):
            list(iter_drive_traces(directory))

    def test_blank_lines_and_bom_repaired(self, tmp_path):
        directory = _drive_dir(tmp_path, "0,1.0\n\n1,2.0\n")
        csv_path = directory / "drv1.csv"
        csv_path.write_bytes(b"\xef\xbb\xbf" + csv_path.read_bytes())
        (trace,) = list(iter_drive_traces(directory))
        assert trace.values["smart_5"].tolist() == [1.0, 2.0]


class TestBackblazeStreamingRoundTrip:
    def _dataset(self):
        config = BackblazeConfig.small()
        rng = np.random.default_rng(3)
        drives = [
            DriveTrace(
                serial=f"drive{i}",
                values={
                    "smart_5": rng.random(5),
                    "smart_187": rng.random(5),
                },
                failed=i == 0,
                failure_day=4 if i == 0 else None,
            )
            for i in range(3)
        ]
        return BackblazeDataset(drives=drives, config=config)

    def test_streamed_iteration_matches_full_load(self, tmp_path):
        dataset = self._dataset()
        save_backblaze_dataset(dataset, tmp_path)
        loaded = load_backblaze_dataset(tmp_path)
        streamed = list(iter_drive_traces(tmp_path))
        assert [d.serial for d in streamed] == [d.serial for d in loaded]
        for full, lazy in zip(loaded, streamed):
            assert full.failed == lazy.failed
            assert full.failure_day == lazy.failure_day
            for column in full.values:
                assert np.array_equal(full.values[column], lazy.values[column])

    def test_streaming_is_lazy(self, tmp_path):
        dataset = self._dataset()
        save_backblaze_dataset(dataset, tmp_path)
        iterator = iter_drive_traces(tmp_path)
        first = next(iterator)
        assert first.serial == "drive0"
        # Corrupt a later drive's file: an eager loader would already
        # have parsed (and rejected) it, a lazy one fails only on reach.
        (tmp_path / "drive2.csv").write_text("day,smart_5\n0,bad\n")
        assert next(iterator).serial == "drive1"
        with pytest.raises(ValueError, match="not a number"):
            next(iterator)
