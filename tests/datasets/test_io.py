"""Tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BackblazeConfig,
    PlantConfig,
    generate_backblaze_dataset,
    generate_plant_dataset,
    load_backblaze_dataset,
    load_plant_dataset,
    save_backblaze_dataset,
    save_plant_dataset,
)


class TestPlantIO:
    def test_roundtrip_preserves_everything(self, tmp_path):
        dataset = generate_plant_dataset(PlantConfig.small(seed=5))
        directory = save_plant_dataset(dataset, tmp_path / "plant")
        loaded = load_plant_dataset(directory)

        assert loaded.config == dataset.config
        assert loaded.component_of == dataset.component_of
        assert loaded.disturbed_sensors == dataset.disturbed_sensors
        for sensor in dataset.log.sensors:
            assert loaded.log[sensor].events == dataset.log[sensor].events

    def test_files_created(self, tmp_path):
        dataset = generate_plant_dataset(PlantConfig.small(seed=5))
        directory = save_plant_dataset(dataset, tmp_path / "plant")
        assert (directory / "events.csv").exists()
        assert (directory / "ground_truth.json").exists()

    def test_loaded_dataset_supports_splits(self, tmp_path):
        dataset = generate_plant_dataset(PlantConfig.small(seed=5))
        loaded = load_plant_dataset(save_plant_dataset(dataset, tmp_path / "p"))
        train, dev, test = loaded.split(10, 3)
        assert train.num_samples == 10 * loaded.config.samples_per_day


class TestBackblazeIO:
    def test_roundtrip_preserves_values_exactly(self, tmp_path):
        dataset = generate_backblaze_dataset(BackblazeConfig.small(seed=2))
        directory = save_backblaze_dataset(dataset, tmp_path / "drives")
        loaded = load_backblaze_dataset(directory)

        assert loaded.config == dataset.config
        assert len(loaded) == len(dataset)
        for original, restored in zip(dataset.drives, loaded.drives):
            assert original.serial == restored.serial
            assert original.failed == restored.failed
            assert original.failure_day == restored.failure_day
            for column, series in original.values.items():
                np.testing.assert_array_equal(series, restored.values[column])

    def test_one_csv_per_drive(self, tmp_path):
        dataset = generate_backblaze_dataset(BackblazeConfig.small(seed=2))
        directory = save_backblaze_dataset(dataset, tmp_path / "drives")
        csvs = list(directory.glob("Z*.csv"))
        assert len(csvs) == len(dataset)
        assert (directory / "manifest.json").exists()
