"""Tests for the synthetic SMART trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BackblazeConfig,
    KEY_FAILURE_ATTRIBUTES,
    generate_backblaze_dataset,
    raw_attribute_names,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_backblaze_dataset(BackblazeConfig.small())


class TestConfig:
    def test_paper_scale_defaults(self):
        config = BackblazeConfig()
        assert config.num_drives == 24
        assert config.days >= 300  # "over 10-month data in the year"

    def test_validation(self):
        with pytest.raises(ValueError):
            BackblazeConfig(num_drives=1)
        with pytest.raises(ValueError):
            BackblazeConfig(failure_fraction=1.5)


class TestDrivePopulation:
    def test_drive_count_and_failure_fraction(self, dataset):
        assert len(dataset) == dataset.config.num_drives
        expected_failures = round(
            dataset.config.failure_fraction * dataset.config.num_drives
        )
        assert len(dataset.failed_serials) == expected_failures

    def test_all_attributes_present(self, dataset):
        for drive in dataset:
            assert set(drive.values) == set(raw_attribute_names())

    def test_failed_drives_truncated_at_failure_day(self, dataset):
        for drive in dataset:
            if drive.failed:
                assert drive.days_observed == drive.failure_day
                assert drive.days_observed < dataset.config.days
            else:
                assert drive.days_observed == dataset.config.days

    def test_cumulative_attributes_monotonic(self, dataset):
        for drive in dataset:
            power_on = drive.values["smart_9"]
            assert (np.diff(power_on) >= 0).all()

    def test_error_counters_mostly_zero_on_healthy_drives(self, dataset):
        """Benign incidents are rare: the zero-dominated distributions
        that trigger the binary discretization scheme (Figure 10a)."""
        healthy = [d for d in dataset if not d.failed]
        for column in ("smart_187", "smart_197", "smart_5"):
            pooled = np.concatenate([d.values[column] for d in healthy])
            assert (pooled == 0).mean() > 0.5

    def test_failure_ramp_raises_key_counters(self, dataset):
        """Table III's key signals increment before (non-silent) failures."""
        failing = [d for d in dataset if d.failed]
        assert failing
        ramped_drives = 0
        for drive in failing:
            ramped = sum(
                drive.values[f"smart_{smart_id}"][-3:].sum() > 0
                for smart_id in KEY_FAILURE_ATTRIBUTES
            )
            ramped_drives += ramped >= 3
        # All but the silent failures show a multi-counter ramp.
        silent = dataset.config.silent_failure_fraction
        assert ramped_drives >= int((1 - silent) * len(failing)) - 1

    def test_temperature_in_plausible_range(self, dataset):
        for drive in dataset:
            temps = drive.values["smart_194"]
            assert (temps > 10).all() and (temps < 60).all()

    def test_deterministic_generation(self):
        a = generate_backblaze_dataset(BackblazeConfig.small(seed=5))
        b = generate_backblaze_dataset(BackblazeConfig.small(seed=5))
        np.testing.assert_array_equal(
            a.drives[0].values["smart_194"], b.drives[0].values["smart_194"]
        )


class TestWindows:
    def test_window_slicing(self, dataset):
        drive = dataset.drives[-1]  # healthy drive, full history
        window = drive.window(10, 20)
        assert all(len(series) == 10 for series in window.values())

    def test_last_days(self, dataset):
        drive = dataset.drives[-1]
        tail = drive.last_days(30)
        np.testing.assert_array_equal(
            tail["smart_9"], drive.values["smart_9"][-30:]
        )

    def test_long_history_filter(self, dataset):
        long_drives = dataset.long_history_drives(min_days=dataset.config.days)
        assert all(not d.failed for d in long_drives)
