"""Tests for feature discretization (Figure 10 schemes)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    BinaryDiscretizer,
    QuantileDiscretizer,
    discretize_records,
    fit_discretizers,
)
from repro.datasets.discretize import fit_discretizer


class TestSchemeSelection:
    def test_zero_dominated_feature_gets_binary(self):
        values = [0.0] * 90 + [3.0] * 10
        discretizer = fit_discretizer("smart_187", values)
        assert isinstance(discretizer, BinaryDiscretizer)

    def test_spread_feature_gets_quantile(self):
        values = np.linspace(1, 100, 200)
        discretizer = fit_discretizer("smart_9", values)
        assert isinstance(discretizer, QuantileDiscretizer)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            fit_discretizer("f", [])


class TestBinaryDiscretizer:
    def test_zero_nonzero_labels(self):
        out = BinaryDiscretizer("f").transform([0.0, 1.0, 0.0, -2.0])
        assert out == ["zero", "nonzero", "zero", "nonzero"]


class TestQuantileDiscretizer:
    def test_five_levels_roughly_balanced(self):
        values = np.linspace(0, 100, 500)
        discretizer = QuantileDiscretizer.fit("f", values)
        labels = discretizer.transform(values)
        counts = {label: labels.count(label) for label in set(labels)}
        assert set(counts) == {"q1", "q2", "q3", "q4", "q5"}
        assert max(counts.values()) - min(counts.values()) <= len(values) // 20

    def test_boundaries_from_training_not_test(self):
        train = np.linspace(0, 10, 100)
        discretizer = QuantileDiscretizer.fit("f", train)
        # Test values beyond the training range land in the edge bins.
        assert discretizer.transform([-5.0]) == ["q1"]
        assert discretizer.transform([999.0]) == ["q5"]

    def test_percentile_boundaries(self):
        values = np.arange(100, dtype=float)
        discretizer = QuantileDiscretizer.fit("f", values)
        np.testing.assert_allclose(
            discretizer.boundaries,
            np.quantile(values, (0.2, 0.4, 0.6, 0.8)),
        )


class TestDiscretizeRecords:
    def test_builds_event_log_with_selected_features(self):
        training = {"a": [0.0] * 80 + [1.0] * 20, "b": list(np.linspace(0, 9, 100))}
        discretizers = fit_discretizers(training)
        log = discretize_records(
            {"a": [0.0, 2.0], "b": [0.5, 8.0], "ignored": [1.0, 2.0]},
            discretizers,
        )
        assert set(log.sensors) == {"a", "b"}
        assert log["a"].events == ("zero", "nonzero")

    def test_missing_feature_rejected(self):
        discretizers = fit_discretizers({"a": [0.0, 1.0, 0.0]})
        with pytest.raises(KeyError):
            discretize_records({"b": [1.0]}, discretizers)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=5, max_size=100),
)
def test_property_discretization_total_and_closed(values):
    """Every value maps to exactly one category from a fixed set."""
    discretizer = fit_discretizer("f", values)
    labels = discretizer.transform(values)
    assert len(labels) == len(values)
    if isinstance(discretizer, BinaryDiscretizer):
        assert set(labels) <= {"zero", "nonzero"}
    else:
        assert set(labels) <= {"q1", "q2", "q3", "q4", "q5"}
