"""Tests for the anomaly-injection API."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.datasets import (
    desynchronize,
    freeze,
    replace_events,
    swap_sensors,
    validate_windows,
)
from repro.lang import MultivariateEventLog


@pytest.fixture()
def log():
    a = [("ON" if (t // 5) % 2 == 0 else "OFF") for t in range(100)]
    b = [str((t // 3) % 3) for t in range(100)]
    return MultivariateEventLog.from_mapping({"a": a, "b": b})


class TestDesynchronize:
    def test_marginals_preserved_inside_window(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert Counter(out["a"].events[20:60]) == Counter(log["a"].events[20:60])

    def test_window_content_changed(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert out["a"].events[20:60] != log["a"].events[20:60]

    def test_outside_window_untouched(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert out["a"].events[:20] == log["a"].events[:20]
        assert out["a"].events[60:] == log["a"].events[60:]
        assert out["b"].events == log["b"].events

    def test_original_log_not_mutated(self, log):
        before = log["a"].events
        desynchronize(log, ["a"], 20, 60, seed=1)
        assert log["a"].events == before

    def test_invalid_window(self, log):
        with pytest.raises(ValueError):
            desynchronize(log, ["a"], 50, 50)
        with pytest.raises(ValueError):
            desynchronize(log, ["a"], 0, 1000)


class TestWindowValidation:
    def test_zero_length_window_names_the_problem(self, log):
        with pytest.raises(ValueError, match="zero-length"):
            freeze(log, ["a"], 50, 50)

    def test_inverted_window_names_the_problem(self, log):
        with pytest.raises(ValueError, match="inverted"):
            freeze(log, ["a"], 60, 20)

    def test_out_of_range_window_names_the_problem(self, log):
        with pytest.raises(ValueError, match="outside the log"):
            freeze(log, ["a"], -1, 10)
        with pytest.raises(ValueError, match="outside the log"):
            freeze(log, ["a"], 90, 120)

    def test_validate_windows_accepts_disjoint_and_sorts(self, log):
        assert validate_windows(log, [(40, 60), (0, 10), (10, 20)]) == [
            (0, 10),
            (10, 20),
            (40, 60),
        ]

    def test_validate_windows_rejects_overlap(self, log):
        with pytest.raises(ValueError, match="overlapping injection windows"):
            validate_windows(log, [(0, 30), (20, 50)])

    def test_validate_windows_rejects_zero_length_member(self, log):
        with pytest.raises(ValueError, match="zero-length"):
            validate_windows(log, [(0, 10), (40, 40)])


class TestReplaceEvents:
    def test_untouched_sensor_keeps_table_and_codes(self, log):
        out = replace_events(log, {"a": ["ON"] * 100})
        assert out["b"].table is log["b"].table
        assert np.array_equal(out["b"].codes, log["b"].codes)

    def test_replaced_sensor_table_consistent_with_stream(self, log):
        out = freeze(log, ["a"], 0, 100)
        # The frozen stream is constant; its (re-interned) table must
        # still decode every stored code — no stale-table aliasing.
        codes = out["a"].codes
        assert int(codes.max()) < len(out["a"].table.states)
        assert set(out["a"].events) == {log["a"].events[0]}

    def test_injected_log_shares_no_frame_storage(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert not np.shares_memory(out.frame.codes, log.frame.codes)

    def test_length_mismatch_rejected(self, log):
        with pytest.raises(ValueError, match="99 events"):
            replace_events(log, {"a": ["ON"] * 99})

    def test_unknown_sensor_rejected(self, log):
        with pytest.raises(KeyError, match="nope"):
            replace_events(log, {"nope": ["ON"] * 100})

    def test_swap_with_self_rejected(self, log):
        with pytest.raises(ValueError, match="itself"):
            swap_sensors(log, "a", "a", 0, 10)


class TestFreeze:
    def test_window_held_at_entry_state(self, log):
        out = freeze(log, ["a"], 10, 30)
        entry = log["a"].events[10]
        assert set(out["a"].events[10:30]) == {entry}

    def test_other_sensors_untouched(self, log):
        out = freeze(log, ["a"], 10, 30)
        assert out["b"].events == log["b"].events


class TestSwapSensors:
    def test_streams_exchanged_in_window(self, log):
        out = swap_sensors(log, "a", "b", 40, 70)
        assert out["a"].events[40:70] == log["b"].events[40:70]
        assert out["b"].events[40:70] == log["a"].events[40:70]

    def test_outside_window_untouched(self, log):
        out = swap_sensors(log, "a", "b", 40, 70)
        assert out["a"].events[:40] == log["a"].events[:40]
        assert out["b"].events[70:] == log["b"].events[70:]


class TestDetectionIntegration:
    def test_injected_desync_is_detected(self, fitted_plant_framework, plant_dataset):
        """An anomaly injected with the public API on an otherwise
        normal period is caught by a fitted framework."""
        _, _, test = plant_dataset.split(10, 3)
        clean = test.slice(0, 3 * plant_dataset.config.samples_per_day)
        sensors = fitted_plant_framework.graph.sensors[:10]
        spd = plant_dataset.config.samples_per_day
        injected = desynchronize(clean, sensors, spd, 2 * spd, seed=3)

        baseline = fitted_plant_framework.detect(clean)
        attacked = fitted_plant_framework.detect(injected)
        assert attacked.anomaly_scores.max() > baseline.anomaly_scores.max()
