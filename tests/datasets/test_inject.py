"""Tests for the anomaly-injection API."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.datasets import desynchronize, freeze, swap_sensors
from repro.lang import MultivariateEventLog


@pytest.fixture()
def log():
    a = [("ON" if (t // 5) % 2 == 0 else "OFF") for t in range(100)]
    b = [str((t // 3) % 3) for t in range(100)]
    return MultivariateEventLog.from_mapping({"a": a, "b": b})


class TestDesynchronize:
    def test_marginals_preserved_inside_window(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert Counter(out["a"].events[20:60]) == Counter(log["a"].events[20:60])

    def test_window_content_changed(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert out["a"].events[20:60] != log["a"].events[20:60]

    def test_outside_window_untouched(self, log):
        out = desynchronize(log, ["a"], 20, 60, seed=1)
        assert out["a"].events[:20] == log["a"].events[:20]
        assert out["a"].events[60:] == log["a"].events[60:]
        assert out["b"].events == log["b"].events

    def test_original_log_not_mutated(self, log):
        before = log["a"].events
        desynchronize(log, ["a"], 20, 60, seed=1)
        assert log["a"].events == before

    def test_invalid_window(self, log):
        with pytest.raises(ValueError):
            desynchronize(log, ["a"], 50, 50)
        with pytest.raises(ValueError):
            desynchronize(log, ["a"], 0, 1000)


class TestFreeze:
    def test_window_held_at_entry_state(self, log):
        out = freeze(log, ["a"], 10, 30)
        entry = log["a"].events[10]
        assert set(out["a"].events[10:30]) == {entry}

    def test_other_sensors_untouched(self, log):
        out = freeze(log, ["a"], 10, 30)
        assert out["b"].events == log["b"].events


class TestSwapSensors:
    def test_streams_exchanged_in_window(self, log):
        out = swap_sensors(log, "a", "b", 40, 70)
        assert out["a"].events[40:70] == log["b"].events[40:70]
        assert out["b"].events[40:70] == log["a"].events[40:70]

    def test_outside_window_untouched(self, log):
        out = swap_sensors(log, "a", "b", 40, 70)
        assert out["a"].events[:40] == log["a"].events[:40]
        assert out["b"].events[70:] == log["b"].events[70:]


class TestDetectionIntegration:
    def test_injected_desync_is_detected(self, fitted_plant_framework, plant_dataset):
        """An anomaly injected with the public API on an otherwise
        normal period is caught by a fitted framework."""
        _, _, test = plant_dataset.split(10, 3)
        clean = test.slice(0, 3 * plant_dataset.config.samples_per_day)
        sensors = fitted_plant_framework.graph.sensors[:10]
        spd = plant_dataset.config.samples_per_day
        injected = desynchronize(clean, sensors, spd, 2 * spd, seed=3)

        baseline = fitted_plant_framework.detect(clean)
        attacked = fitted_plant_framework.detect(injected)
        assert attacked.anomaly_scores.max() > baseline.anomaly_scores.max()
