"""The equivalence wall around the pair prescreen.

Two guarantees gate the prescreen into the pipeline:

- ``prescreen="off"`` is bit-identical to a pipeline without the
  PrescreenStage at all — same edge weights, same per-sentence dev
  scores, same content-addressed pair artifact digests;
- every pair the calibrated ``"bleu"`` prescreen prunes would, if
  trained anyway, score strictly below the lowest dev-BLEU admitted to
  any informative global-subgraph range — pruning can only ever remove
  edges the graph would not use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.graph.ranges import DEFAULT_RANGES
from repro.lang import LanguageConfig
from repro.graph.mvrg import MultivariateRelationshipGraph
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.executor import PairTask, train_pair
from repro.pipeline.stages import (
    CorpusStage,
    EncryptStage,
    GraphAssembleStage,
    PairTrainStage,
    StageContext,
    StageGraph,
)

#: The lowest low-bound of any informative default range: an edge below
#: this score is never admitted to a global subgraph whose range can
#: carry structure (the [0, 60) catch-all is not informative).
LOWEST_INFORMATIVE_BOUND = min(r.low for r in DEFAULT_RANGES if r.low > 0)

LANGUAGE = LanguageConfig(
    word_size=6, word_stride=1, sentence_length=8, sentence_stride=8
)


@pytest.fixture(scope="module")
def noisy_plant_split():
    """A noisy plant log where a majority of pairs are genuinely weak.

    The elevated noise rate thins out the relationship graph the same
    way a real, loosely coupled fleet does; it is the regime the
    prescreen exists for (the default low-noise plant is near-fully
    connected and prunes nothing).
    """
    config = PlantConfig(
        num_sensors=12,
        days=14,
        samples_per_day=96,
        num_components=4,
        noise_rate=0.10,
        seed=7,
        anomaly_days=(13,),
        precursor_days=(12,),
    )
    data = generate_plant_dataset(config)
    train, dev, _ = data.split(7, 3)
    return train, dev


def _build(train, dev, prescreen, store=None):
    return MultivariateRelationshipGraph.build(
        train, dev, config=LANGUAGE, engine="ngram", prescreen=prescreen, store=store
    )


def _legacy_build(train, dev, store):
    """The pre-prescreen pipeline: no PrescreenStage in the graph."""
    seeds = {
        "training_log": train,
        "development_log": dev,
        "language_config": LANGUAGE,
        "representation": "codes",
        "factory_spec": ("engine", "ngram", None),
        "pairs": None,
        "executor_options": {},
    }
    pipeline = StageGraph(
        [EncryptStage(), CorpusStage(), PairTrainStage(), GraphAssembleStage()],
        seeds=tuple(seeds),
    )
    context = pipeline.run(StageContext(seeds, store=store))
    return context["graph"]


class TestOffBitIdentical:
    def test_scores_and_artifacts_match_prescreenless_pipeline(
        self, noisy_plant_split, tmp_path
    ):
        train, dev = noisy_plant_split
        legacy_store = ArtifactStore(tmp_path / "legacy")
        off_store = ArtifactStore(tmp_path / "off")
        legacy = _legacy_build(train, dev, legacy_store)
        off = _build(train, dev, prescreen="off", store=off_store)

        assert off.prescreen is None
        assert set(off.relationships) == set(legacy.relationships)
        for pair, rel in legacy.relationships.items():
            other = off.relationships[pair]
            assert other.score == rel.score
            np.testing.assert_array_equal(
                other.dev_sentence_scores, rel.dev_sentence_scores
            )

        legacy_keys = {key.digest for key in legacy_store.keys(kind="pair")}
        off_keys = {key.digest for key in off_store.keys(kind="pair")}
        assert off_keys == legacy_keys
        # Off stores nothing of its own: no prescreen artifact exists.
        assert list(off_store.keys(kind="prescreen")) == []

    def test_none_is_off(self, noisy_plant_split):
        train, dev = noisy_plant_split
        graph = _build(train, dev, prescreen=None)
        assert graph.prescreen is None
        assert graph.build_report.pruned == []


class TestPrunedPairsBelowAdmission:
    def test_every_pruned_pair_scores_below_lowest_admitted(self, noisy_plant_split):
        train, dev = noisy_plant_split
        graph = _build(train, dev, prescreen="bleu")
        result = graph.prescreen
        assert result is not None
        # The regime check: this dataset must actually exercise pruning.
        assert len(result.pruned_pairs) >= 10

        kept_scores = [rel.score for rel in graph]
        admitted = [s for s in kept_scores if s >= LOWEST_INFORMATIVE_BOUND]
        bound = min([LOWEST_INFORMATIVE_BOUND, *admitted])

        corpus = graph.corpus
        dev_sentences = {
            name: corpus[name].sentences_for(dev[name]) for name in corpus.sensors
        }
        spec = ("engine", "ngram", None)
        for source, target in result.pruned_pairs:
            task = PairTask(
                source=source,
                target=target,
                corpus=corpus.parallel(source, target),
                dev_source=dev_sentences[source],
                dev_target=dev_sentences[target],
            )
            trained = train_pair(task, spec)
            assert trained.score < bound, (
                f"prescreen pruned ({source!r}, {target!r}) with affinity "
                f"{result.affinity(source, target):.2f} below floor "
                f"{result.floor:g}, but its trained dev-BLEU "
                f"{trained.score:.2f} would have been admitted (bound {bound:.2f})"
            )

    def test_pruned_accounting_consistent(self, noisy_plant_split):
        train, dev = noisy_plant_split
        graph = _build(train, dev, prescreen="bleu")
        report = graph.build_report
        sensors = len(graph.sensors)
        assert sorted(report.pruned) == sorted(graph.prescreen.pruned_pairs)
        assert (
            len(report.completed)
            + len(report.cached)
            + len(report.pruned)
            + len(report.skipped)
            == sensors * (sensors - 1)
        )
        # Pruned pairs never became edges; kept pairs all did.
        assert not set(report.pruned) & set(graph.relationships)
        assert set(graph.prescreen.kept_pairs) == set(graph.relationships)

    def test_cached_rebuild_accounting_still_sums(self, noisy_plant_split, tmp_path):
        train, dev = noisy_plant_split
        store = ArtifactStore(tmp_path / "cache")
        _build(train, dev, prescreen="bleu", store=store)
        second = _build(train, dev, prescreen="bleu", store=store)
        report = second.build_report
        sensors = len(second.sensors)
        # Everything kept was restored from the store; pruned pairs are
        # still accounted for, so the buckets partition the full grid.
        assert report.completed == []
        assert (
            len(report.cached) + len(report.pruned) + len(report.skipped)
            == sensors * (sensors - 1)
        )
        assert report.to_dict()["pruned"] == len(report.pruned)
        # The prescreen pass itself was restored from its own artifact.
        assert list(store.keys(kind="prescreen")) != []

    def test_kept_edges_identical_to_full_build(self, noisy_plant_split):
        train, dev = noisy_plant_split
        full = _build(train, dev, prescreen="off")
        pruned = _build(train, dev, prescreen="bleu")
        for pair, rel in pruned.relationships.items():
            assert rel.score == full.relationships[pair].score
