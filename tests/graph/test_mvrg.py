"""Tests for Algorithm 1: relationship-graph construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig, MultivariateEventLog


@pytest.fixture(scope="module")
def logs():
    rng = np.random.default_rng(5)
    total = 480
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    log = MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})
    return log.slice(0, 300), log.slice(300, 480)


@pytest.fixture(scope="module")
def graph(logs):
    train, dev = logs
    return MultivariateRelationshipGraph.build(
        train,
        dev,
        config=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",
    )


class TestBuild:
    def test_all_ordered_pairs_modelled(self, graph):
        assert graph.num_edges == 3 * 2
        assert ("sA", "sB") in graph
        assert ("sB", "sA") in graph
        assert ("sA", "sA") not in graph

    def test_scores_are_valid_bleu(self, graph):
        for pair, score in graph.scores().items():
            assert 0.0 <= score <= 100.0, pair

    def test_related_pair_outscores_unrelated(self, graph):
        assert graph.score("sA", "sB") > graph.score("sA", "sC") + 20

    def test_directional_edges_can_differ(self, graph):
        # Both directions exist with independent models and scores.
        ab = graph[("sA", "sB")]
        ba = graph[("sB", "sA")]
        assert ab.model is not ba.model

    def test_runtimes_recorded(self, graph):
        runtimes = graph.runtimes()
        assert len(runtimes) == graph.num_edges
        assert all(r > 0 for r in runtimes)

    def test_dev_sentence_scores_recorded(self, graph):
        rel = graph[("sA", "sB")]
        assert rel.dev_sentence_scores is not None
        assert (rel.dev_sentence_scores >= 0).all()
        assert (rel.dev_sentence_scores <= 100).all()

    def test_pairs_subset(self, logs):
        train, dev = logs
        graph = MultivariateRelationshipGraph.build(
            train,
            dev,
            config=LanguageConfig(word_size=4, sentence_length=5),
            pairs=[("sA", "sB")],
        )
        assert graph.num_edges == 1

    def test_progress_callback_invoked(self, logs):
        train, dev = logs
        calls = []
        MultivariateRelationshipGraph.build(
            train,
            dev,
            config=LanguageConfig(word_size=4, sentence_length=5),
            pairs=[("sA", "sB"), ("sB", "sC")],
            progress=lambda s, t, score: calls.append((s, t)),
        )
        assert calls == [("sA", "sB"), ("sB", "sC")]

    def test_missing_dev_sensor_rejected(self, logs):
        train, dev = logs
        with pytest.raises(KeyError):
            MultivariateRelationshipGraph.build(
                train,
                dev.select(["sA", "sB"]),
                config=LanguageConfig(word_size=4, sentence_length=5),
            )


class TestThresholds:
    def test_train_strategy_returns_corpus_score(self, graph):
        rel = graph[("sA", "sB")]
        assert rel.threshold("train") == rel.score

    def test_dev_min_is_lower_bound(self, graph):
        rel = graph[("sA", "sB")]
        assert rel.threshold("dev-min") <= rel.threshold("dev-quantile", 0.5)

    def test_quantile_ordering(self, graph):
        rel = graph[("sA", "sB")]
        assert rel.threshold("dev-quantile", 0.1) <= rel.threshold("dev-quantile", 0.9)

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(ValueError):
            graph[("sA", "sB")].threshold("magic")


class TestNetworkxExport:
    def test_nodes_and_edges(self, graph):
        nx_graph = graph.to_networkx()
        assert set(nx_graph.nodes) == {"sA", "sB", "sC"}
        assert nx_graph.number_of_edges() == 6
        assert nx_graph["sA"]["sB"]["score"] == graph.score("sA", "sB")
