"""Tests for Walktrap community detection and component clustering."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import connected_component_clusters, modularity, walktrap_communities


def two_cliques(bridge: bool = True) -> nx.Graph:
    """Two 5-cliques, optionally joined by a single bridge edge."""
    graph = nx.Graph()
    for prefix in ("a", "b"):
        nodes = [f"{prefix}{i}" for i in range(5)]
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                graph.add_edge(u, v)
    if bridge:
        graph.add_edge("a0", "b0")
    return graph


class TestConnectedComponents:
    def test_separate_cliques(self):
        clusters = connected_component_clusters(two_cliques(bridge=False))
        assert len(clusters) == 2
        assert {frozenset(c) for c in clusters} == {
            frozenset(f"a{i}" for i in range(5)),
            frozenset(f"b{i}" for i in range(5)),
        }

    def test_bridge_merges_components(self):
        clusters = connected_component_clusters(two_cliques(bridge=True))
        assert len(clusters) == 1

    def test_directed_graph_uses_weak_components(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("c", "b")
        clusters = connected_component_clusters(graph)
        assert clusters == [{"a", "b", "c"}]

    def test_largest_first_ordering(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        graph.add_edges_from([("x", "y"), ("y", "z")])
        clusters = connected_component_clusters(graph)
        assert len(clusters[0]) == 3


class TestModularity:
    def test_good_partition_beats_bad(self):
        graph = two_cliques(bridge=True)
        good = [{f"a{i}" for i in range(5)}, {f"b{i}" for i in range(5)}]
        bad = [{"a0", "b0"}, set(graph.nodes) - {"a0", "b0"}]
        assert modularity(graph, good) > modularity(graph, bad)

    def test_single_community_modularity_zero(self):
        graph = two_cliques()
        assert modularity(graph, [set(graph.nodes)]) == pytest.approx(0.0)

    def test_empty_graph(self):
        assert modularity(nx.Graph(), []) == 0.0


class TestWalktrap:
    def test_recovers_two_cliques_through_bridge(self):
        communities = walktrap_communities(two_cliques(bridge=True))
        assert {frozenset(c) for c in communities} == {
            frozenset(f"a{i}" for i in range(5)),
            frozenset(f"b{i}" for i in range(5)),
        }

    def test_handles_disconnected_graph(self):
        communities = walktrap_communities(two_cliques(bridge=False))
        assert len(communities) == 2

    def test_directed_input_symmetrised(self):
        graph = nx.DiGraph()
        for u, v in two_cliques(bridge=True).edges:
            graph.add_edge(u, v, score=85.0)
        communities = walktrap_communities(graph)
        assert len(communities) == 2

    def test_tiny_graphs(self):
        assert walktrap_communities(nx.Graph()) == []
        single = nx.Graph()
        single.add_node("a")
        assert walktrap_communities(single) == [{"a"}]
        pair = nx.Graph()
        pair.add_edge("a", "b")
        assert walktrap_communities(pair) == [{"a", "b"}]

    def test_three_cliques_ring(self):
        """Three cliques in a ring are separated despite full connectivity."""
        graph = nx.Graph()
        for prefix in ("a", "b", "c"):
            nodes = [f"{prefix}{i}" for i in range(4)]
            for i, u in enumerate(nodes):
                for v in nodes[i + 1 :]:
                    graph.add_edge(u, v)
        graph.add_edge("a0", "b0")
        graph.add_edge("b1", "c0")
        graph.add_edge("c1", "a1")
        communities = walktrap_communities(graph)
        assert len(communities) == 3
        sizes = sorted(len(c) for c in communities)
        assert sizes == [4, 4, 4]
