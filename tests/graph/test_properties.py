"""Property-based tests over graph-layer invariants."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DEFAULT_RANGES,
    PairwiseRelationship,
    connected_component_clusters,
    local_subgraph,
    modularity,
    partition_by_ranges,
    popular_sensors,
    walktrap_communities,
)


def random_digraph(edge_spec):
    graph = nx.DiGraph()
    for u, v, score in edge_spec:
        if u != v:
            graph.add_edge(f"n{u}", f"n{v}", score=score)
    return graph

EDGES = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.floats(0, 100, allow_nan=False)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(EDGES, st.integers(1, 5))
def test_property_local_subgraph_is_subgraph(edges, threshold):
    graph = random_digraph(edges)
    local = local_subgraph(graph, threshold)
    assert set(local.nodes) <= set(graph.nodes)
    assert set(local.edges) <= set(graph.edges)
    # No popular node survives, no isolated node remains.
    popular = set(popular_sensors(graph, threshold))
    assert not popular & set(local.nodes)
    assert all(local.degree(node) > 0 for node in local.nodes)


@settings(max_examples=40, deadline=None)
@given(EDGES)
def test_property_components_partition_nodes(edges):
    graph = random_digraph(edges)
    clusters = connected_component_clusters(graph)
    union = set().union(*clusters) if clusters else set()
    assert union == set(graph.nodes)
    for a in range(len(clusters)):
        for b in range(a + 1, len(clusters)):
            assert not clusters[a] & clusters[b]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        min_size=1,
        max_size=30,
    )
)
def test_property_walktrap_partitions_nodes(edges):
    graph = nx.Graph()
    for u, v in edges:
        if u != v:
            graph.add_edge(f"n{u}", f"n{v}")
    if graph.number_of_nodes() == 0:
        return
    communities = walktrap_communities(graph)
    union = set().union(*communities) if communities else set()
    assert union == set(graph.nodes)
    for a in range(len(communities)):
        for b in range(a + 1, len(communities)):
            assert not communities[a] & communities[b]
    # The chosen partition's modularity is at least the trivial
    # one-community partition's (which is 0 per component).
    assert modularity(graph, communities) >= -1e-9


DEV_SCORES = st.lists(
    st.floats(0, 100, allow_nan=False, allow_infinity=False), min_size=1, max_size=50
)


def relationship_with(dev_scores, score=77.0):
    return PairwiseRelationship(
        source="src",
        target="tgt",
        model=None,
        score=score,
        dev_sentence_scores=np.asarray(dev_scores),
    )


@settings(max_examples=60, deadline=None)
@given(DEV_SCORES, st.floats(0, 1, allow_nan=False))
def test_property_threshold_quantile_between_extremes(dev_scores, q):
    rel = relationship_with(dev_scores)
    dev_min = rel.threshold("dev-min")
    quantile = rel.threshold("dev-quantile", q)
    assert dev_min == min(dev_scores)
    assert dev_min <= quantile <= max(dev_scores)


@settings(max_examples=40, deadline=None)
@given(DEV_SCORES, st.floats(0, 100, allow_nan=False))
def test_property_train_threshold_ignores_dev_scores(dev_scores, score):
    rel = relationship_with(dev_scores, score=score)
    assert rel.threshold("train") == score
    # Without dev scores every strategy falls back to the training score.
    bare = PairwiseRelationship(source="src", target="tgt", model=None, score=score)
    assert bare.threshold("dev-min") == score
    assert bare.threshold("dev-quantile", 0.3) == score


@settings(max_examples=40, deadline=None)
@given(st.text(max_size=20), DEV_SCORES)
def test_property_unknown_threshold_strategy_raises(strategy, dev_scores):
    if strategy in ("train", "dev-min", "dev-quantile"):
        return
    with pytest.raises(ValueError, match="unknown threshold strategy"):
        relationship_with(dev_scores).threshold(strategy)


@settings(max_examples=40, deadline=None)
@given(EDGES)
def test_property_range_partition_preserves_scores(edges):
    graph = random_digraph(edges)
    subgraphs = partition_by_ranges(graph, DEFAULT_RANGES)
    for score_range, sub in subgraphs.items():
        for u, v, data in sub.edges(data=True):
            assert score_range.contains(data["score"])
            assert graph[u][v]["score"] == data["score"]
