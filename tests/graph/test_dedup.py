"""Tests for redundant-sensor filtering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import RedundancyGroups, find_redundant_sensors, sequence_agreement
from repro.lang import MultivariateEventLog


class TestSequenceAgreement:
    def test_identical(self):
        assert sequence_agreement(("a", "b"), ("a", "b")) == 1.0

    def test_disjoint(self):
        assert sequence_agreement(("a", "a"), ("b", "b")) == 0.0

    def test_partial(self):
        assert sequence_agreement(("a", "b", "a", "b"), ("a", "b", "b", "b")) == 0.75

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            sequence_agreement(("a",), ("a", "b"))

    def test_empty_sequences_agree(self):
        assert sequence_agreement((), ()) == 1.0


class TestFindRedundantSensors:
    def test_duplicate_sensors_grouped(self):
        a = ["on", "off"] * 50
        log = MultivariateEventLog.from_mapping(
            {"s1": a, "s2": list(a), "s3": [str(i % 3) for i in range(100)]}
        )
        groups = find_redundant_sensors(log)
        assert groups.representative_of["s2"] == "s1"
        assert groups.representative_of["s3"] == "s3"
        assert groups.num_redundant == 1

    def test_renamed_states_are_redundant(self):
        """Two sensors with the same dynamics but different state names
        (ON/OFF vs 1/0) share an encrypted language and are grouped."""
        pattern = [(t // 5) % 2 for t in range(100)]
        log = MultivariateEventLog.from_mapping(
            {
                "switch": ["OFF" if v == 0 else "ON" for v in pattern],
                "relay": [str(v) for v in pattern],
            }
        )
        groups = find_redundant_sensors(log)
        assert groups.num_redundant == 1

    def test_inverted_sensor_not_grouped(self):
        pattern = [(t // 5) % 2 for t in range(100)]
        log = MultivariateEventLog.from_mapping(
            {
                "direct": ["a" if v == 0 else "b" for v in pattern],
                "inverted": ["b" if v == 0 else "a" for v in pattern],
            }
        )
        groups = find_redundant_sensors(log)
        # Encryption normalises by alphanumeric order, so the inverted
        # sensor's encoded sequence is the complement — near-0 agreement.
        assert groups.num_redundant == 0

    def test_similarity_threshold(self):
        base = ["on", "off"] * 50
        noisy = list(base)
        for i in range(0, 100, 10):  # 10% disagreement
            noisy[i] = "on" if noisy[i] == "off" else "off"
        log = MultivariateEventLog.from_mapping({"s1": base, "s2": noisy})
        strict = find_redundant_sensors(log, similarity=0.95)
        loose = find_redundant_sensors(log, similarity=0.85)
        assert strict.num_redundant == 0
        assert loose.num_redundant == 1

    def test_reduction_factor(self):
        a = ["x", "y"] * 30
        log = MultivariateEventLog.from_mapping(
            {"s1": a, "s2": list(a), "s3": list(a), "s4": [str((i // 3) % 2) for i in range(60)]}
        )
        groups = find_redundant_sensors(log)
        # 4 sensors -> 2 representatives: 12 models shrink to 2.
        assert groups.reduction_factor() == pytest.approx(6.0)
        assert set(groups.group_of(groups.representative_of["s1"])) >= {"s1", "s2", "s3"}

    def test_invalid_similarity(self):
        log = MultivariateEventLog.from_mapping({"a": ["1", "2"]})
        with pytest.raises(ValueError):
            find_redundant_sensors(log, similarity=0.0)

    def test_on_plant_dataset_finds_savings(self, plant_dataset):
        """Same-component sensors with shared drivers yield redundancy."""
        groups = find_redundant_sensors(plant_dataset.log, similarity=0.95)
        assert len(groups.representatives) <= plant_dataset.log.num_sensors
        assert groups.reduction_factor() >= 1.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sampled_from(["p", "q"]), min_size=10, max_size=60),
    st.floats(0.5, 1.0),
)
def test_property_every_sensor_gets_a_representative(states, similarity):
    log = MultivariateEventLog.from_mapping(
        {"s1": states, "s2": list(reversed(states)), "s3": states}
    )
    groups = find_redundant_sensors(log, similarity=similarity)
    assert set(groups.representative_of) == {"s1", "s2", "s3"}
    # Representatives represent themselves.
    for representative in groups.representatives:
        assert groups.representative_of[representative] == representative
