"""Tests for relationship-graph export."""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.graph import graph_to_dict, load_graph_scores, save_graph_json, save_graphml


class TestGraphExport:
    def test_dict_structure(self, fitted_plant_framework):
        graph = fitted_plant_framework.graph
        payload = graph_to_dict(graph)
        assert payload["sensors"] == graph.sensors
        assert len(payload["edges"]) == graph.num_edges
        edge = payload["edges"][0]
        assert set(edge) == {"source", "target", "score", "runtime_seconds"}

    def test_json_roundtrip_preserves_scores(self, fitted_plant_framework, tmp_path):
        graph = fitted_plant_framework.graph
        path = save_graph_json(graph, tmp_path / "graph.json")
        loaded = load_graph_scores(path)
        assert isinstance(loaded, nx.DiGraph)
        assert set(loaded.nodes) == set(graph.sensors)
        for (source, target), score in graph.scores().items():
            assert loaded[source][target]["score"] == score

    def test_json_is_valid_json(self, fitted_plant_framework, tmp_path):
        path = save_graph_json(fitted_plant_framework.graph, tmp_path / "g.json")
        json.loads(path.read_text())

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": 1}))
        with pytest.raises(ValueError):
            load_graph_scores(path)

    def test_graphml_loadable_by_networkx(self, fitted_plant_framework, tmp_path):
        graph = fitted_plant_framework.graph
        path = save_graphml(graph, tmp_path / "graph.graphml")
        loaded = nx.read_graphml(path)
        assert loaded.number_of_edges() == graph.num_edges
