"""Tests for graph-level summary metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import gini_coefficient, score_asymmetry, summarize_graph


class TestGiniCoefficient:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(10, 5.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_near_one(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.9

    def test_empty_and_zero(self):
        assert gini_coefficient(np.zeros(0)) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=50))
    def test_property_bounded(self, values):
        g = gini_coefficient(np.asarray(values))
        assert -1e-9 <= g <= 1.0


class TestScoreAsymmetry:
    def test_one_entry_per_unordered_pair(self, fitted_plant_framework):
        graph = fitted_plant_framework.graph
        asymmetry = score_asymmetry(graph)
        assert len(asymmetry) == graph.num_edges // 2

    def test_values_match_manual(self, fitted_plant_framework):
        graph = fitted_plant_framework.graph
        asymmetry = score_asymmetry(graph)
        (source, target), value = next(iter(asymmetry.items()))
        expected = abs(graph.score(source, target) - graph.score(target, source))
        assert value == pytest.approx(expected)

    def test_directional_scores_do_differ(self, fitted_plant_framework):
        """The paper notes s(i,j) and s(j,i) may differ; they do."""
        asymmetry = score_asymmetry(fitted_plant_framework.graph)
        assert max(asymmetry.values()) > 0.0


class TestSummarizeGraph:
    def test_summary_fields(self, fitted_plant_framework):
        summary = summarize_graph(fitted_plant_framework.graph)
        assert summary.num_sensors == len(fitted_plant_framework.graph.sensors)
        assert summary.num_edges == fitted_plant_framework.graph.num_edges
        assert 0.0 <= summary.mean_score <= 100.0
        assert 0.0 <= summary.in_degree_gini <= 1.0
        row = summary.as_row()
        assert "mean BLEU" in row and "in-degree Gini" in row

    def test_in_degree_concentration_positive(self, fitted_plant_framework):
        """Popular-sensor effect: strong in-degree is not uniform."""
        summary = summarize_graph(fitted_plant_framework.graph)
        assert summary.in_degree_gini > 0.0
