"""Property tests for the prescreen affinity kernel.

The kernel's contract (symmetry, self-affinity at the ceiling,
invariance to sample order and token labels, purity, and the documented
degenerate value for unmeasurable inputs) is what the equivalence wall
in ``test_prescreen_equivalence.py`` leans on; Hypothesis searches for
corpora that break it.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.prescreen import (
    DEGENERATE_AFFINITY,
    PRESCREEN_METHODS,
    PrescreenConfig,
    pair_affinity,
)
from repro.translation.bleu import mapping_proxy_scores

SETTINGS = settings(max_examples=60, deadline=None)

methods = st.sampled_from(PRESCREEN_METHODS)


@st.composite
def aligned_corpora(draw):
    """Two aligned corpora of uniform-length integer-token sentences."""
    length = draw(st.integers(1, 5))
    count = draw(st.integers(1, 8))
    token = st.integers(0, 4)
    sentence = st.lists(token, min_size=length, max_size=length).map(tuple)
    corpus = st.lists(sentence, min_size=count, max_size=count)
    return draw(corpus), draw(corpus)


class TestKernelProperties:
    @SETTINGS
    @given(corpora=aligned_corpora(), method=methods)
    def test_symmetric(self, corpora, method):
        left, right = corpora
        config = PrescreenConfig(method=method)
        forward = pair_affinity(left, right, config)
        backward = pair_affinity(right, left, config)
        # "bleu" swaps its two directional statistics exactly; "mi"
        # swaps entropy terms whose summation order may differ by ulps.
        if method == "bleu":
            assert forward == backward
        else:
            assert math.isclose(forward, backward, rel_tol=1e-9, abs_tol=1e-9)

    @SETTINGS
    @given(corpora=aligned_corpora(), method=methods)
    def test_bounded_and_self_affinity_maximal(self, corpora, method):
        left, right = corpora
        config = PrescreenConfig(method=method)
        cross = pair_affinity(left, right, config)
        assert 0.0 <= cross <= 100.0
        # A sensor translated into itself is perfectly predictable:
        # self-affinity sits at the top of the scale, above any pair.
        assert pair_affinity(left, left, config) == DEGENERATE_AFFINITY
        assert pair_affinity(left, left, config) >= cross

    @SETTINGS
    @given(corpora=aligned_corpora(), method=methods, seed=st.integers(0, 2**16))
    def test_sample_order_invariant(self, corpora, method, seed):
        import random

        left, right = corpora
        order = list(range(len(left)))
        random.Random(seed).shuffle(order)
        shuffled_left = [left[i] for i in order]
        shuffled_right = [right[i] for i in order]
        config = PrescreenConfig(method=method)
        base = pair_affinity(left, right, config)
        shuffled = pair_affinity(shuffled_left, shuffled_right, config)
        if method == "bleu":
            assert base == shuffled
        else:
            assert math.isclose(base, shuffled, rel_tol=1e-9, abs_tol=1e-9)

    @SETTINGS
    @given(corpora=aligned_corpora(), method=methods)
    def test_token_label_invariant(self, corpora, method):
        # The affinity reads co-occurrence structure, not token values:
        # any injective relabelling of either alphabet preserves it.
        relabel = {value: f"token-{value * 7 + 3}" for value in range(5)}
        left, right = corpora
        renamed_left = [tuple(relabel[t] for t in s) for s in left]
        renamed_right = [tuple(relabel[t] for t in s) for s in right]
        config = PrescreenConfig(method=method)
        base = pair_affinity(left, right, config)
        renamed = pair_affinity(renamed_left, renamed_right, config)
        assert math.isclose(base, renamed, rel_tol=1e-9, abs_tol=1e-9)

    @SETTINGS
    @given(corpora=aligned_corpora(), method=methods)
    def test_pure(self, corpora, method):
        left, right = corpora
        first = pair_affinity(left, right, PrescreenConfig(method=method))
        second = pair_affinity(list(left), list(right), PrescreenConfig(method=method))
        assert first == second

    @SETTINGS
    @given(corpora=aligned_corpora())
    def test_directional_scores_swap_exactly(self, corpora):
        left, right = corpora
        forward, reverse = mapping_proxy_scores(left, right)
        swapped_forward, swapped_reverse = mapping_proxy_scores(right, left)
        assert forward == swapped_reverse
        assert reverse == swapped_forward


class TestDegenerateInputs:
    """Unmeasurable pairs land on the documented ceiling, never raise."""

    def test_empty_corpora(self):
        for method in PRESCREEN_METHODS:
            config = PrescreenConfig(method=method)
            assert pair_affinity([], [], config) == DEGENERATE_AFFINITY
            assert pair_affinity([(1, 2)], [], config) == DEGENERATE_AFFINITY

    def test_zero_length_sentences(self):
        for method in PRESCREEN_METHODS:
            config = PrescreenConfig(method=method)
            assert pair_affinity([()], [()], config) == DEGENERATE_AFFINITY

    def test_constant_sensor(self):
        constant = [(0, 0, 0)] * 4
        varied = [(1, 2, 1), (2, 1, 2), (1, 1, 2), (2, 2, 1)]
        # A constant target is perfectly translatable — the "bleu"
        # kernel scores it at the ceiling through its normal path,
        # while "mi" parks the zero-entropy stream at the degenerate
        # value.  Either way the pair is kept.
        for method in PRESCREEN_METHODS:
            config = PrescreenConfig(method=method)
            assert pair_affinity(varied, constant, config) == DEGENERATE_AFFINITY
            assert pair_affinity(constant, varied, config) == DEGENERATE_AFFINITY

    def test_disjoint_alphabets_measured_not_degenerate(self):
        left = [("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")]
        right = [(10, 20), (20, 10), (10, 20), (20, 20)]
        for method in PRESCREEN_METHODS:
            value = pair_affinity(left, right, PrescreenConfig(method=method))
            assert 0.0 <= value <= 100.0

    def test_no_repeating_context_scores_conservative_ceiling(self):
        # Every context occurs once: leave-one-out counting has no
        # evidence either way, so the proxy must not claim the pair is
        # unpredictable (that would let memorisation-starved corpora be
        # pruned blind).
        left = [(1, 2, 3)]
        right = [(4, 5, 6)]
        forward, reverse = mapping_proxy_scores(left, right)
        assert forward == 100.0
        assert reverse == 100.0
