"""Tests for global/local subgraph extraction (Table I machinery)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DEFAULT_RANGES,
    ScoreRange,
    global_subgraph,
    local_subgraph,
    partition_by_ranges,
    popular_sensors,
    subgraph_statistics,
)


def make_digraph(edges):
    graph = nx.DiGraph()
    for source, target, score in edges:
        graph.add_edge(source, target, score=score)
    return graph


class TestGlobalSubgraph:
    def test_keeps_only_in_range_edges(self):
        graph = make_digraph([("a", "b", 85.0), ("b", "c", 50.0), ("c", "a", 89.9)])
        sub = global_subgraph(graph, ScoreRange(80, 90))
        assert set(sub.edges) == {("a", "b"), ("c", "a")}

    def test_isolated_nodes_dropped(self):
        graph = make_digraph([("a", "b", 85.0), ("c", "d", 10.0)])
        sub = global_subgraph(graph, ScoreRange(80, 90))
        assert set(sub.nodes) == {"a", "b"}

    def test_boundary_scores(self):
        graph = make_digraph([("a", "b", 90.0), ("b", "c", 80.0)])
        sub = global_subgraph(graph, ScoreRange(80, 90))
        assert set(sub.edges) == {("b", "c")}

    def test_works_on_mvrg(self, fitted_plant_framework):
        sub = fitted_plant_framework.global_subgraph(ScoreRange(0, 100, inclusive_high=True))
        assert sub.number_of_edges() == fitted_plant_framework.graph.num_edges


class TestPopularAndLocal:
    def test_popular_by_in_degree(self):
        edges = [(f"n{i}", "hub", 85.0) for i in range(5)]
        edges.append(("hub", "n0", 85.0))
        graph = make_digraph(edges)
        assert popular_sensors(graph, threshold=5) == ["hub"]
        assert popular_sensors(graph, threshold=6) == []

    def test_local_removes_popular_and_isolated(self):
        edges = [(f"n{i}", "hub", 85.0) for i in range(5)]
        edges += [("n0", "n1", 85.0)]
        graph = make_digraph(edges)
        local = local_subgraph(graph, threshold=5)
        assert "hub" not in local
        # n2..n4 only connected to the hub, so they drop out too.
        assert set(local.nodes) == {"n0", "n1"}

    def test_local_subgraph_does_not_mutate_global(self):
        edges = [(f"n{i}", "hub", 85.0) for i in range(5)]
        graph = make_digraph(edges)
        local_subgraph(graph, threshold=5)
        assert "hub" in graph


class TestStatistics:
    def test_fractions_sum_to_one(self, fitted_plant_framework):
        stats = fitted_plant_framework.subgraph_statistics()
        total = sum(s.relationship_fraction for s in stats)
        assert total == pytest.approx(1.0)

    def test_rows_cover_default_ranges(self, fitted_plant_framework):
        stats = fitted_plant_framework.subgraph_statistics()
        assert [s.score_range.label for s in stats] == [r.label for r in DEFAULT_RANGES]

    def test_as_row_keys(self, fitted_plant_framework):
        row = fitted_plant_framework.subgraph_statistics()[0].as_row()
        assert set(row) == {
            "range",
            "% relationships",
            "# sensors",
            "# popular sensors",
            "# relationships (w/o popular)",
        }


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6), st.floats(0, 100, allow_nan=False)),
        min_size=1,
        max_size=30,
    )
)
def test_property_partition_covers_every_edge_once(edges):
    """Each edge appears in exactly one range's subgraph."""
    graph = nx.DiGraph()
    for source, target, score in edges:
        if source != target:
            graph.add_edge(f"n{source}", f"n{target}", score=score)
    subs = {r: global_subgraph(graph, r) for r in DEFAULT_RANGES}
    total = sum(sub.number_of_edges() for sub in subs.values())
    assert total == graph.number_of_edges()
