"""Tests for BLEU score ranges."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DEFAULT_RANGES, DETECTION_RANGE, STRONGEST_RANGE, ScoreRange


class TestScoreRange:
    def test_half_open_semantics(self):
        r = ScoreRange(80, 90)
        assert r.contains(80.0)
        assert r.contains(89.999)
        assert not r.contains(90.0)
        assert not r.contains(79.999)

    def test_inclusive_high(self):
        r = ScoreRange(90, 100, inclusive_high=True)
        assert r.contains(100.0)

    def test_label_format(self):
        assert ScoreRange(80, 90).label == "[80, 90)"
        assert ScoreRange(90, 100, inclusive_high=True).label == "[90, 100]"

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ScoreRange(90, 80)
        with pytest.raises(ValueError):
            ScoreRange(-5, 50)
        with pytest.raises(ValueError):
            ScoreRange(50, 120)

    def test_paper_partition(self):
        labels = [r.label for r in DEFAULT_RANGES]
        assert labels == ["[0, 60)", "[60, 70)", "[70, 80)", "[80, 90)", "[90, 100]"]
        assert DETECTION_RANGE.label == "[80, 90)"
        assert STRONGEST_RANGE.inclusive_high


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_property_default_ranges_partition_scores(score):
    """Every BLEU score falls in exactly one default range."""
    memberships = [r.contains(score) for r in DEFAULT_RANGES]
    assert sum(memberships) == 1
