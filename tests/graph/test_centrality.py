"""Tests for degree statistics (Figure 5, Table III machinery)."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.graph import DegreeSummary, degree_distribution, degree_summary, rank_by_in_degree


def star_graph():
    graph = nx.DiGraph()
    for i in range(4):
        graph.add_edge(f"leaf{i}", "hub", score=85.0)
    graph.add_edge("hub", "leaf0", score=85.0)
    return graph


class TestDegreeDistribution:
    def test_in_degrees_sorted(self):
        degrees = degree_distribution(star_graph(), "in")
        assert list(degrees) == [0, 0, 0, 1, 4]

    def test_out_degrees(self):
        degrees = degree_distribution(star_graph(), "out")
        assert list(degrees) == [1, 1, 1, 1, 1]

    def test_invalid_kind(self):
        import pytest

        with pytest.raises(ValueError):
            degree_distribution(star_graph(), "sideways")


class TestDegreeSummary:
    def test_summary_values(self):
        summary = DegreeSummary.of(star_graph(), "in")
        assert summary.maximum == 4
        assert summary.minimum == 0
        assert summary.mean == 1.0

    def test_empty_graph(self):
        summary = DegreeSummary.of(nx.DiGraph(), "in")
        assert summary.maximum == 0

    def test_degree_summary_both_kinds(self):
        summaries = degree_summary(star_graph())
        assert set(summaries) == {"in", "out"}


class TestRankByInDegree:
    def test_hub_first(self):
        ranking = rank_by_in_degree(star_graph())
        assert ranking[0][0] == "hub"
        assert ranking[0][1] == 4

    def test_top_k(self):
        assert len(rank_by_in_degree(star_graph(), top=2)) == 2

    def test_ties_broken_by_out_degree_then_name(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "x")
        graph.add_edge("b", "y")
        graph.add_edge("y", "a")
        # x and y both have in-degree 1; y has out-degree 1 > x's 0.
        ranking = rank_by_in_degree(graph)
        names = [row[0] for row in ranking]
        assert names.index("y") < names.index("x")
