"""Tests for the drive-level baseline evaluation (Table II machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.evaluation import evaluate_ocsvm, evaluate_random_forest
from repro.datasets import BackblazeConfig, generate_backblaze_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_backblaze_dataset(
        BackblazeConfig(num_drives=30, days=200, seed=13)
    )


class TestRandomForestEvaluation:
    def test_produces_recall_and_ranking(self, dataset):
        result = evaluate_random_forest(dataset, num_trees=15, seed=0)
        assert result.model_name == "Random Forest"
        assert 0.0 <= result.recall <= 1.0
        assert len(result.feature_ranking) == 34

    def test_detects_ramped_failures(self, dataset):
        """The supervised baseline recalls a majority of failures (the
        silent ones are undetectable by construction)."""
        result = evaluate_random_forest(dataset, num_trees=25, seed=1)
        assert result.recall >= 0.5

    def test_deterministic_given_seed(self, dataset):
        a = evaluate_random_forest(dataset, num_trees=8, seed=3)
        b = evaluate_random_forest(dataset, num_trees=8, seed=3)
        assert a.recall == b.recall


class TestOcsvmEvaluation:
    def test_produces_recall_without_ranking(self, dataset):
        result = evaluate_ocsvm(dataset, seed=0)
        assert result.model_name == "One-class SVM"
        assert 0.0 <= result.recall <= 1.0
        assert result.feature_ranking is None

    def test_confusion_counts_all_rows(self, dataset):
        result = evaluate_ocsvm(dataset, seed=0)
        cm = result.confusion
        total = cm.true_positive + cm.false_positive + cm.true_negative + cm.false_negative
        expected = sum(d.days_observed for d in dataset.drives)
        assert total == expected
