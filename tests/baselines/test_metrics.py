"""Tests for binary classification metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ConfusionMatrix, confusion_matrix, f1_score, precision, recall


class TestConfusionMatrix:
    def test_counts(self):
        labels = np.array([1, 1, 0, 0, 1])
        predictions = np.array([1, 0, 0, 1, 1])
        cm = confusion_matrix(labels, predictions)
        assert (cm.true_positive, cm.false_negative) == (2, 1)
        assert (cm.true_negative, cm.false_positive) == (1, 1)

    def test_metric_values(self):
        cm = ConfusionMatrix(true_positive=8, false_positive=2, true_negative=85, false_negative=5)
        assert cm.recall == pytest.approx(8 / 13)
        assert cm.precision == pytest.approx(0.8)
        assert cm.accuracy == pytest.approx(0.93)
        expected_f1 = 2 * 0.8 * (8 / 13) / (0.8 + 8 / 13)
        assert cm.f1 == pytest.approx(expected_f1)

    def test_degenerate_cases_return_zero(self):
        cm = ConfusionMatrix(0, 0, 10, 0)
        assert cm.recall == 0.0
        assert cm.precision == 0.0
        assert cm.f1 == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1, 0]), np.array([1]))

    def test_functional_wrappers(self):
        labels = np.array([1, 0, 1, 1])
        predictions = np.array([1, 0, 0, 1])
        assert recall(labels, predictions) == pytest.approx(2 / 3)
        assert precision(labels, predictions) == pytest.approx(1.0)
        assert 0 < f1_score(labels, predictions) < 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=50))
def test_property_counts_partition_population(pairs):
    labels = np.array([a for a, _ in pairs])
    predictions = np.array([b for _, b in pairs])
    cm = confusion_matrix(labels, predictions)
    total = cm.true_positive + cm.false_positive + cm.true_negative + cm.false_negative
    assert total == len(pairs)
    assert 0.0 <= cm.recall <= 1.0
    assert 0.0 <= cm.precision <= 1.0
