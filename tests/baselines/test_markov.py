"""Tests for the Markov-chain extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MarkovAnomalyDetector, MarkovChainModel
from repro.lang import EventSequence, MultivariateEventLog


def periodic(total, period=6, states=("ON", "OFF")):
    return [states[(t // period) % 2] for t in range(total)]


class TestMarkovChainModel:
    def test_fits_and_scores_training_pattern_low(self):
        sequence = EventSequence("s", periodic(300))
        model = MarkovChainModel(order=2).fit(sequence)
        familiar = tuple(periodic(40))
        shuffled = tuple(np.random.default_rng(0).permutation(list(familiar)))
        assert model.negative_log_likelihood(familiar) < model.negative_log_likelihood(shuffled)

    def test_unseen_state_has_finite_likelihood(self):
        model = MarkovChainModel(order=1).fit(EventSequence("s", periodic(100)))
        nll = model.negative_log_likelihood(("NOVEL", "NOVEL", "NOVEL"))
        assert np.isfinite(nll)
        assert nll > 0

    def test_too_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            MarkovChainModel(order=3).fit(EventSequence("s", ["a", "b"]))

    def test_window_shorter_than_order_rejected(self):
        model = MarkovChainModel(order=2).fit(EventSequence("s", periodic(50)))
        with pytest.raises(ValueError):
            model.negative_log_likelihood(("ON",))

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            MarkovChainModel().negative_log_likelihood(("a", "b", "c"))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MarkovChainModel(order=0)
        with pytest.raises(ValueError):
            MarkovChainModel(smoothing=0.0)


class TestMarkovAnomalyDetector:
    @pytest.fixture()
    def logs(self):
        train = MultivariateEventLog.from_mapping(
            {"a": periodic(400), "b": periodic(400, period=8)}
        )
        dev = MultivariateEventLog.from_mapping(
            {"a": periodic(200), "b": periodic(200, period=8)}
        )
        return train, dev

    def test_detects_marginal_anomaly(self, logs):
        """A sensor emitting shuffled (non-periodic) states is caught —
        this is the anomaly class a univariate model CAN see."""
        train, dev = logs
        detector = MarkovAnomalyDetector(order=2, window_size=20).fit(train, dev)
        rng = np.random.default_rng(1)
        broken = [str(s) for s in rng.choice(["ON", "OFF"], size=200)]
        test = MultivariateEventLog.from_mapping(
            {"a": broken, "b": periodic(200, period=8)}
        )
        result = detector.detect(test)
        assert result.anomaly_scores.max() >= 0.5

    def test_quiet_on_normal_data(self, logs):
        train, dev = logs
        detector = MarkovAnomalyDetector(order=2, window_size=20).fit(train, dev)
        result = detector.detect(dev)
        assert result.anomaly_scores.mean() < 0.2

    def test_blind_to_joint_desynchronization(self, logs):
        """The paper's core anomaly class — a phase shift that preserves
        each sensor's marginal dynamics — is invisible to the chains."""
        train, dev = logs
        detector = MarkovAnomalyDetector(order=2, window_size=20).fit(train, dev)
        shifted = periodic(203)[3:]  # same dynamics, shifted phase
        test = MultivariateEventLog.from_mapping(
            {"a": shifted, "b": periodic(200, period=8)}
        )
        result = detector.detect(test)
        assert result.anomaly_scores.max() <= 0.5

    def test_constant_sensors_skipped(self):
        train = MultivariateEventLog.from_mapping(
            {"a": periodic(300), "flat": ["x"] * 300}
        )
        dev = train.slice(0, 150)
        detector = MarkovAnomalyDetector(window_size=20).fit(train, dev)
        assert "flat" not in detector._models

    def test_all_constant_rejected(self):
        log = MultivariateEventLog.from_mapping({"flat": ["x"] * 100})
        with pytest.raises(ValueError):
            MarkovAnomalyDetector(window_size=20).fit(log, log)

    def test_detect_before_fit(self):
        with pytest.raises(RuntimeError):
            MarkovAnomalyDetector(window_size=20).detect(
                MultivariateEventLog.from_mapping({"a": ["1"] * 30})
            )

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MarkovAnomalyDetector(order=5, window_size=5)
