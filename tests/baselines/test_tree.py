"""Tests for the CART decision tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DecisionTree


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1, 1, size=(n, 2))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
    return features, labels


class TestDecisionTree:
    def test_learns_axis_aligned_split(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(-1, 1, size=(100, 3))
        labels = (features[:, 1] > 0.2).astype(int)
        tree = DecisionTree().fit(features, labels)
        assert (tree.predict(features) == labels).mean() == 1.0

    def test_learns_xor_with_depth_two(self):
        features, labels = xor_data()
        tree = DecisionTree(max_depth=3).fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.95

    def test_max_depth_limits_tree(self):
        features, labels = xor_data()
        stump = DecisionTree(max_depth=1).fit(features, labels)
        # A depth-1 tree cannot express XOR.
        assert (stump.predict(features) == labels).mean() < 0.8

    def test_predict_proba_rows_sum_to_one(self):
        features, labels = xor_data(80)
        tree = DecisionTree(max_depth=4).fit(features, labels)
        proba = tree.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(80))

    def test_feature_importances_identify_informative_feature(self):
        rng = np.random.default_rng(2)
        features = rng.uniform(-1, 1, size=(200, 4))
        labels = (features[:, 2] > 0).astype(int)
        tree = DecisionTree().fit(features, labels)
        assert tree.feature_importances_.argmax() == 2
        np.testing.assert_allclose(tree.feature_importances_.sum(), 1.0)

    def test_pure_node_is_leaf(self):
        features = np.array([[0.0], [1.0], [2.0]])
        labels = np.array([1, 1, 1])
        tree = DecisionTree().fit(features, labels)
        assert (tree.predict(features) == 1).all()

    def test_constant_features_produce_majority_leaf(self):
        features = np.zeros((10, 2))
        labels = np.array([0] * 7 + [1] * 3)
        tree = DecisionTree().fit(features, labels)
        assert (tree.predict(features) == 0).all()

    def test_string_labels_supported(self):
        features = np.array([[0.0], [1.0], [0.1], [0.9]])
        labels = np.array(["healthy", "failed", "healthy", "failed"])
        tree = DecisionTree().fit(features, labels)
        assert list(tree.predict(np.array([[0.05], [0.95]]))) == ["healthy", "failed"]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_max_features_subsampling_still_learns(self):
        features, labels = xor_data(300, seed=3)
        tree = DecisionTree(max_depth=6, max_features=1, rng=np.random.default_rng(3))
        tree.fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.9
