"""Property-based tests over the baseline models' contracts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DecisionTree, KMeans, MarkovChainModel
from repro.lang import EventSequence


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(5, 40),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_property_tree_predictions_in_label_set(rows, cols, seed):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(rows, cols))
    labels = rng.integers(0, 3, size=rows)
    tree = DecisionTree(max_depth=4, rng=np.random.default_rng(seed)).fit(features, labels)
    predictions = tree.predict(rng.normal(size=(10, cols)))
    assert set(predictions) <= set(labels)
    proba = tree.predict_proba(features)
    np.testing.assert_allclose(proba.sum(axis=1), np.ones(rows))
    assert (proba >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(6, 30),
    clusters=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_property_kmeans_assignment_is_nearest_center(rows, clusters, seed):
    rng = np.random.default_rng(seed)
    clusters = min(clusters, rows)
    features = rng.normal(size=(rows, 2))
    model = KMeans(num_clusters=clusters, seed=seed).fit(features)
    assignment = model.predict(features)
    distances = model.transform(features)
    np.testing.assert_array_equal(assignment, distances.argmin(axis=1))
    assert set(assignment) <= set(range(clusters))


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.sampled_from(["x", "y", "z"]), min_size=8, max_size=60),
    st.integers(1, 3),
)
def test_property_markov_nll_finite_and_nonnegative(events, order):
    if len(set(events)) < 2:
        events = events + ["x", "y"]
    model = MarkovChainModel(order=order).fit(EventSequence("s", events))
    window = tuple(events[: order + 4])
    nll = model.negative_log_likelihood(window)
    assert np.isfinite(nll)
    assert nll >= 0.0
