"""Tests for the one-class SVM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import OneClassSVM, project_capped_simplex, rbf_kernel


class TestRbfKernel:
    def test_diagonal_is_one(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        kernel = rbf_kernel(x, x, gamma=0.5)
        np.testing.assert_allclose(np.diag(kernel), np.ones(5), rtol=1e-12)

    def test_symmetry_and_bounds(self):
        x = np.random.default_rng(1).normal(size=(6, 2))
        kernel = rbf_kernel(x, x, gamma=1.0)
        np.testing.assert_allclose(kernel, kernel.T, rtol=1e-12)
        assert (kernel > 0).all() and (kernel <= 1).all()

    def test_distance_monotonicity(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.1, 0.0], [2.0, 0.0]])
        kernel = rbf_kernel(a, b, gamma=1.0)
        assert kernel[0, 0] > kernel[0, 1]


class TestProjection:
    def test_result_satisfies_constraints(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=20)
        cap = 0.2
        projected = project_capped_simplex(values, cap)
        assert projected.sum() == pytest.approx(1.0, abs=1e-6)
        assert (projected >= -1e-12).all()
        assert (projected <= cap + 1e-12).all()

    def test_feasible_point_unchanged(self):
        values = np.full(4, 0.25)
        np.testing.assert_allclose(project_capped_simplex(values, 0.5), values, atol=1e-6)

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.ones(3), cap=0.1)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=30),
    st.floats(0.5, 1.0),
)
def test_property_projection_always_feasible(values, cap):
    projected = project_capped_simplex(np.asarray(values), cap)
    assert projected.sum() == pytest.approx(1.0, abs=1e-5)
    assert (projected >= -1e-9).all()
    assert (projected <= cap + 1e-9).all()


class TestOneClassSVM:
    def test_detects_far_outliers(self):
        rng = np.random.default_rng(3)
        inliers = rng.normal(0, 1, size=(120, 2))
        model = OneClassSVM(nu=0.1, seed=0).fit(inliers)
        outliers = np.array([[8.0, 8.0], [-9.0, 7.0], [10.0, 0.0]])
        assert (model.predict(outliers) == -1).all()

    def test_accepts_most_inliers(self):
        rng = np.random.default_rng(4)
        inliers = rng.normal(0, 1, size=(150, 2))
        model = OneClassSVM(nu=0.1, seed=0).fit(inliers)
        acceptance = (model.predict(inliers) == 1).mean()
        assert acceptance > 0.7

    def test_decision_function_orders_by_distance(self):
        rng = np.random.default_rng(5)
        inliers = rng.normal(0, 1, size=(100, 2))
        model = OneClassSVM(nu=0.2).fit(inliers)
        near = model.decision_function(np.array([[0.0, 0.0]]))
        far = model.decision_function(np.array([[6.0, 6.0]]))
        assert near[0] > far[0]

    def test_explicit_gamma(self):
        rng = np.random.default_rng(6)
        model = OneClassSVM(nu=0.2, gamma=0.7).fit(rng.normal(size=(30, 2)))
        assert model._gamma_value == 0.7

    def test_invalid_nu(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSVM(nu=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            OneClassSVM().predict(np.zeros((1, 2)))

    def test_too_small_training_set(self):
        with pytest.raises(ValueError):
            OneClassSVM().fit(np.zeros((1, 2)))
