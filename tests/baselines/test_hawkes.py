"""Tests for the multivariate Hawkes baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    HawkesAnomalyDetector,
    MultivariateHawkes,
    state_change_times,
)
from repro.lang import EventSequence, MultivariateEventLog


class TestStateChangeTimes:
    def test_changes_extracted(self):
        seq = EventSequence("s", ["a", "a", "b", "b", "a"])
        np.testing.assert_array_equal(state_change_times(seq), [2.0, 4.0])

    def test_constant_sequence_has_no_events(self):
        assert state_change_times(EventSequence("s", ["x"] * 10)).size == 0


def cascading_events(total: float, rng, rate=0.05, lag=2.0):
    """Dimension 'a' fires Poisson; 'b' echoes each 'a' event after ~lag."""
    a = np.sort(rng.uniform(0, total, size=rng.poisson(rate * total)))
    b = np.sort(a + rng.exponential(lag, size=len(a)))
    b = b[b < total]
    return {"a": a, "b": b}


class TestMultivariateHawkes:
    def test_fit_produces_valid_parameters(self):
        rng = np.random.default_rng(0)
        events = cascading_events(2000, rng)
        model = MultivariateHawkes(decay=0.5, iterations=40).fit(events, 2000.0)
        assert model.mu_.shape == (2,)
        assert model.alpha_.shape == (2, 2)
        assert (model.mu_ > 0).all()
        assert (model.alpha_ >= 0).all()

    def test_learns_directional_excitation(self):
        """a triggers b, so α[b, a] should dominate α[a, b]."""
        rng = np.random.default_rng(1)
        events = cascading_events(4000, rng)
        model = MultivariateHawkes(decay=0.5, iterations=60).fit(events, 4000.0)
        a, b = model.dimensions.index("a"), model.dimensions.index("b")
        assert model.alpha_[b, a] > model.alpha_[a, b] + 0.1

    def test_influence_graph_edges(self):
        rng = np.random.default_rng(2)
        events = cascading_events(4000, rng)
        model = MultivariateHawkes(decay=0.5, iterations=60).fit(events, 4000.0)
        edges = model.influence_graph(threshold=0.2)
        assert ("a", "b") in edges  # a excites b

    def test_likelihood_prefers_training_like_data(self):
        rng = np.random.default_rng(3)
        events = cascading_events(3000, rng)
        model = MultivariateHawkes(decay=0.5, iterations=40).fit(events, 3000.0)
        similar = cascading_events(500, np.random.default_rng(4))
        # Decoupled data: b independent of a.
        decoupled = {
            "a": np.sort(rng.uniform(0, 500, size=len(similar["a"]))),
            "b": np.sort(rng.uniform(0, 500, size=len(similar["b"]))),
        }
        assert model.log_likelihood(similar, 500.0) > model.log_likelihood(decoupled, 500.0)

    def test_empty_stream(self):
        model = MultivariateHawkes().fit({"a": np.zeros(0), "b": np.zeros(0)}, 100.0)
        assert (model.alpha_ == 0).all()
        ll = model.log_likelihood({"a": np.zeros(0), "b": np.zeros(0)}, 100.0)
        assert np.isfinite(ll)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MultivariateHawkes(decay=0.0)
        with pytest.raises(ValueError):
            MultivariateHawkes(iterations=0)
        with pytest.raises(ValueError):
            MultivariateHawkes().fit({"a": np.zeros(0)}, horizon=0.0)

    def test_unfitted_likelihood_rejected(self):
        with pytest.raises(RuntimeError):
            MultivariateHawkes().log_likelihood({"a": np.zeros(0)}, 10.0)


class TestHawkesAnomalyDetector:
    @pytest.fixture()
    def logs(self):
        def make(total, seed):
            rng = np.random.default_rng(seed)
            a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
            b = ["OFF"] + a[:-1]
            return MultivariateEventLog.from_mapping({"a": a, "b": b})

        return make(600, 0), make(300, 1)

    def test_quiet_on_normal_windows(self, logs):
        train, dev = logs
        detector = HawkesAnomalyDetector(window_size=30).fit(train, dev)
        result = detector.detect(dev)
        assert result.anomaly_scores.mean() < 0.3

    def test_flags_event_storms(self, logs):
        """A burst of rapid state changes is a likelihood collapse."""
        train, dev = logs
        detector = HawkesAnomalyDetector(window_size=30).fit(train, dev)
        rng = np.random.default_rng(5)
        storm = MultivariateEventLog.from_mapping(
            {
                "a": [str(rng.integers(0, 2)) for _ in range(300)],
                "b": [str(rng.integers(0, 2)) for _ in range(300)],
            }
        )
        result = detector.detect(storm)
        assert result.anomaly_scores.max() > 0.5

    def test_detect_before_fit(self, logs):
        _, dev = logs
        with pytest.raises(RuntimeError):
            HawkesAnomalyDetector(window_size=30).detect(dev)

    def test_short_test_log_rejected(self, logs):
        train, dev = logs
        detector = HawkesAnomalyDetector(window_size=30).fit(train, dev)
        with pytest.raises(ValueError):
            detector.detect(dev.slice(0, 5))
