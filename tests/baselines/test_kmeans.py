"""Tests for K-Means."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import KMeans


def blobs(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = np.vstack(
        [center + rng.normal(0, 0.5, size=(40, 2)) for center in centers]
    )
    labels = np.repeat(np.arange(3), 40)
    return points, labels


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, labels = blobs()
        model = KMeans(num_clusters=3, seed=0).fit(points)
        predicted = model.predict(points)
        # Cluster ids are arbitrary, but each true blob must be pure.
        for blob in range(3):
            assignments = predicted[labels == blob]
            assert len(set(assignments)) == 1

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = blobs(1)
        one = KMeans(num_clusters=1, seed=0).fit(points).inertia_
        three = KMeans(num_clusters=3, seed=0).fit(points).inertia_
        assert three < one / 10

    def test_transform_shape_and_nonnegative(self):
        points, _ = blobs(2)
        model = KMeans(num_clusters=3, seed=0).fit(points)
        distances = model.transform(points[:7])
        assert distances.shape == (7, 3)
        assert (distances >= 0).all()

    def test_more_clusters_than_samples_rejected(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=10).fit(np.zeros((3, 2)))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(num_clusters=2).predict(np.zeros((1, 2)))

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=0)
