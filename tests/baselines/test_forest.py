"""Tests for the random forest and class balancing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RandomForest, balance_classes


def labelled_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 5))
    labels = ((features[:, 0] + features[:, 3]) > 0).astype(int)
    return features, labels


class TestRandomForest:
    def test_learns_linear_boundary(self):
        features, labels = labelled_data()
        forest = RandomForest(num_trees=20, max_depth=6, seed=0).fit(features, labels)
        assert (forest.predict(features) == labels).mean() > 0.95

    def test_predict_proba_distribution(self):
        features, labels = labelled_data(100)
        forest = RandomForest(num_trees=10, max_depth=4, seed=1).fit(features, labels)
        proba = forest.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(100), rtol=1e-10)

    def test_feature_importance_ranks_informative_features(self):
        features, labels = labelled_data(400, seed=2)
        forest = RandomForest(num_trees=25, max_depth=6, seed=2).fit(features, labels)
        ranking = forest.feature_ranking([f"f{i}" for i in range(5)])
        top_two = {name for name, _ in ranking[:2]}
        assert top_two == {"f0", "f3"}

    def test_feature_ranking_top_k(self):
        features, labels = labelled_data(100)
        forest = RandomForest(num_trees=5, max_depth=3, seed=0).fit(features, labels)
        assert len(forest.feature_ranking(["a", "b", "c", "d", "e"], top=3)) == 3

    def test_ranking_name_mismatch_rejected(self):
        features, labels = labelled_data(50)
        forest = RandomForest(num_trees=2, max_depth=2, seed=0).fit(features, labels)
        with pytest.raises(ValueError):
            forest.feature_ranking(["only", "four", "names", "here"])

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 3)))

    def test_seeded_determinism(self):
        features, labels = labelled_data(120)
        a = RandomForest(num_trees=8, max_depth=4, seed=5).fit(features, labels)
        b = RandomForest(num_trees=8, max_depth=4, seed=5).fit(features, labels)
        np.testing.assert_array_equal(a.predict(features), b.predict(features))


class TestBalanceClasses:
    def test_one_to_one_ratio(self):
        rng = np.random.default_rng(0)
        features = np.arange(100)[:, None].astype(float)
        labels = np.array([1] * 10 + [0] * 90)
        balanced_x, balanced_y = balance_classes(features, labels, rng)
        assert (balanced_y == 1).sum() == 10
        assert (balanced_y == 0).sum() == 10

    def test_minority_rows_all_kept(self):
        rng = np.random.default_rng(1)
        features = np.arange(50)[:, None].astype(float)
        labels = np.array([1] * 5 + [0] * 45)
        balanced_x, balanced_y = balance_classes(features, labels, rng)
        minority_values = set(balanced_x[balanced_y == 1, 0])
        assert minority_values == set(range(5))

    def test_custom_ratio(self):
        rng = np.random.default_rng(2)
        features = np.zeros((100, 1))
        labels = np.array([1] * 10 + [0] * 90)
        _, balanced_y = balance_classes(features, labels, rng, ratio=2.0)
        assert (balanced_y == 0).sum() == 20

    def test_multiclass_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            balance_classes(np.zeros((3, 1)), np.array([0, 1, 2]), rng)
