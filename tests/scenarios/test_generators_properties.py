"""Property-based tests for the fault-scenario generators.

Every generator must uphold, for *any* seed and reasonable parameter
shape: the log geometry matches the params, injected labels stay
inside the test period, samples outside labeled windows are
bit-identical to the clean log, alphabets never grow, and the digest
is a pure function of ``(params, seed)``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioParams, generate_scenario, scenario_names

NAMES = st.sampled_from(scenario_names())
SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
PARAMS = st.builds(
    ScenarioParams,
    num_sensors=st.integers(6, 14),
    days=st.integers(7, 9),
    samples_per_day=st.sampled_from([48, 64]),
    num_components=st.integers(2, 5),
    train_days=st.integers(3, 4),
    dev_days=st.just(1),
    severity=st.sampled_from([0.5, 1.0, 2.0]),
)


@settings(max_examples=50, deadline=None)
@given(NAMES, SEEDS)
def test_property_digest_depends_only_on_inputs(name, seed):
    first = generate_scenario(name, tier="tiny", seed=seed)
    second = generate_scenario(name, tier="tiny", seed=seed)
    assert first.digest == second.digest
    assert first.truth == second.truth
    sensor = first.log.sensors[0]
    assert first.log.frame.row_digest(sensor) == second.log.frame.row_digest(sensor)


@settings(max_examples=40, deadline=None)
@given(NAMES, PARAMS, SEEDS)
def test_property_geometry_and_label_containment(name, params, seed):
    data = generate_scenario(name, params=params, seed=seed)
    assert data.log.num_samples == params.total_samples
    assert len(data.log.sensors) == params.num_sensors
    assert data.truth.num_samples == params.total_samples
    assert data.truth.windows, "every scenario injects at least one window"
    for window in data.truth.windows:
        assert params.test_start <= window.start < window.stop <= params.total_samples


@settings(max_examples=40, deadline=None)
@given(NAMES, PARAMS, SEEDS)
def test_property_faults_confined_to_labeled_windows(name, params, seed):
    data = generate_scenario(name, params=params, seed=seed)
    mask = data.truth.sample_mask()
    np.testing.assert_array_equal(
        data.log.frame.codes[:, ~mask], data.clean_log.frame.codes[:, ~mask]
    )
    affected = set(data.truth.affected_sensors)
    for sensor in data.log.sensors:
        if sensor not in affected:
            assert data.log[sensor].events == data.clean_log[sensor].events


@settings(max_examples=40, deadline=None)
@given(NAMES, PARAMS, SEEDS)
def test_property_alphabets_never_grow(name, params, seed):
    data = generate_scenario(name, params=params, seed=seed)
    for sensor in data.truth.affected_sensors:
        assert set(data.log[sensor].events) <= set(data.clean_log[sensor].events)
