"""Tests for the scenario evaluation harness and benchmark log."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry
from repro.scenarios import (
    DEFAULT_DETECTORS,
    SCENARIO_SCHEMA,
    append_bench_record,
    generate_scenario,
    harness_framework_config,
    harness_language_config,
    load_bench,
    run_scenario,
    run_suite,
)


@pytest.fixture(scope="module")
def cascade_report():
    data = generate_scenario("cascade", tier="tiny", seed=11)
    metrics = MetricsRegistry()
    report = run_scenario(data, tier="tiny", metrics=metrics)
    return report, metrics


class TestHarnessConfig:
    def test_windowing_fits_tiny_tier(self):
        language = harness_language_config()
        # One tiny-tier dev day (48 samples) must yield several windows.
        span = language.samples_per_sentence()
        stride = language.effective_sentence_stride * language.word_stride
        assert span <= 48
        assert (48 - span) // stride >= 4

    def test_framework_config_uses_harness_language(self):
        config = harness_framework_config()
        assert config.language == harness_language_config()
        assert config.engine == "ngram"


class TestRunScenario:
    def test_all_default_detectors_reported(self, cascade_report):
        report, _ = cascade_report
        assert tuple(o.detector for o in report.outcomes) == DEFAULT_DETECTORS
        for outcome in report.outcomes:
            assert outcome.num_windows > 0
            assert outcome.window_span > 0 and outcome.window_stride > 0
            assert 0.0 <= outcome.evaluation.precision <= 1.0
            assert 0.0 <= outcome.evaluation.recall <= 1.0

    def test_framework_detects_the_cascade(self, cascade_report):
        report, _ = cascade_report
        framework = report.outcome("framework")
        assert framework.evaluation.recall >= 0.5
        assert framework.evaluation.precision >= 0.5

    def test_truth_is_test_relative(self, cascade_report):
        report, _ = cascade_report
        data = generate_scenario("cascade", tier="tiny", seed=11)
        test_samples = data.params.test_samples
        for start, stop in report.truth_events:
            assert 0 <= start < stop <= test_samples

    def test_metrics_counted(self, cascade_report):
        _, metrics = cascade_report
        assert metrics.value("scenarios.runs") == 1
        assert metrics.value("scenarios.detector_runs") == len(DEFAULT_DETECTORS)

    def test_unknown_detector_rejected(self):
        data = generate_scenario("cascade", tier="tiny", seed=11)
        with pytest.raises(KeyError, match="unknown detectors"):
            run_scenario(data, detectors=("framework", "oracle"))

    def test_missing_outcome_lookup_raises(self, cascade_report):
        report, _ = cascade_report
        with pytest.raises(KeyError, match="no outcome"):
            report.outcome("oracle")

    def test_record_shape(self, cascade_report):
        report, _ = cascade_report
        record = report.to_dict()
        assert record["schema"] == SCENARIO_SCHEMA
        assert record["scenario"] == "cascade"
        assert record["tier"] == "tiny"
        assert record["seed"] == 11
        assert len(record["frame_digest"]) == 64
        assert set(record["detectors"]) == set(DEFAULT_DETECTORS)
        for payload in record["detectors"].values():
            for key in ("threshold", "precision", "recall", "f1", "seconds"):
                assert key in payload
        # Records must be JSON-serialisable as-is.
        json.dumps(record)


class TestBenchLog:
    def test_load_missing_returns_empty_shell(self, tmp_path):
        payload = load_bench(tmp_path / "nothing.json")
        assert payload == {"schema": SCENARIO_SCHEMA, "records": []}

    def test_append_then_load(self, tmp_path, cascade_report):
        report, _ = cascade_report
        path = tmp_path / "bench.json"
        append_bench_record(report.to_dict(), path)
        payload = load_bench(path)
        assert len(payload["records"]) == 1
        assert payload["records"][0]["scenario"] == "cascade"

    def test_same_key_replaces_not_duplicates(self, tmp_path, cascade_report):
        report, _ = cascade_report
        path = tmp_path / "bench.json"
        append_bench_record(report.to_dict(), path)
        changed = dict(report.to_dict(), frame_digest="x" * 64)
        append_bench_record(changed, path)
        payload = load_bench(path)
        assert len(payload["records"]) == 1
        assert payload["records"][0]["frame_digest"] == "x" * 64

    def test_different_seed_appends(self, tmp_path, cascade_report):
        report, _ = cascade_report
        path = tmp_path / "bench.json"
        append_bench_record(report.to_dict(), path)
        append_bench_record(dict(report.to_dict(), seed=99), path)
        assert len(load_bench(path)["records"]) == 2

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "other-v9", "records": []}))
        with pytest.raises(ValueError, match="other-v9"):
            load_bench(path)


class TestRunSuite:
    def test_selected_scenarios_with_bench(self, tmp_path):
        path = tmp_path / "bench.json"
        reports = run_suite(
            names=["dropout"],
            tier="tiny",
            seed=11,
            detectors=("markov",),
            bench_path=path,
        )
        assert [r.scenario for r in reports] == ["dropout"]
        payload = load_bench(path)
        assert [r["scenario"] for r in payload["records"]] == ["dropout"]
        assert set(payload["records"][0]["detectors"]) == {"markov"}

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError, match="unknown tier"):
            run_suite(names=["cascade"], tier="galactic")
