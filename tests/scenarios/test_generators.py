"""Unit tests for the fault-scenario generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import (
    SCENARIOS,
    ScenarioParams,
    TIERS,
    generate_scenario,
    scenario_names,
)

ALL_NAMES = scenario_names()


@pytest.fixture(scope="module", params=ALL_NAMES)
def scenario(request):
    return generate_scenario(request.param, tier="tiny", seed=11)


class TestRegistry:
    def test_seven_scenarios_registered(self):
        assert len(SCENARIOS) == 7
        assert scenario_names() == list(SCENARIOS)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            generate_scenario("nope")

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError, match="unknown tier"):
            generate_scenario("cascade", tier="galactic")

    def test_params_win_over_tier(self):
        params = ScenarioParams(num_sensors=8, days=7, samples_per_day=32)
        data = generate_scenario("cascade", params=params, tier="small", seed=3)
        assert data.params == params
        assert data.log.num_samples == params.total_samples


class TestParams:
    def test_rejects_no_test_days(self):
        with pytest.raises(ValueError, match="no test days"):
            ScenarioParams(days=5, train_days=4, dev_days=1)

    def test_rejects_nonpositive_severity(self):
        with pytest.raises(ValueError, match="severity"):
            ScenarioParams(severity=0.0)

    def test_derived_sample_counts(self):
        params = TIERS["tiny"]
        assert params.total_samples == 7 * 48
        assert params.test_start == 5 * 48
        assert params.test_samples == 2 * 48


class TestGeneratedScenario:
    def test_log_shape_matches_params(self, scenario):
        assert scenario.log.num_samples == scenario.params.total_samples
        assert len(scenario.log.sensors) == scenario.params.num_sensors
        assert scenario.log.sensors == scenario.clean_log.sensors

    def test_truth_windows_only_in_test_period(self, scenario):
        for window in scenario.truth.windows:
            assert window.start >= scenario.params.test_start
            assert window.stop <= scenario.params.total_samples

    def test_samples_outside_truth_identical_to_clean(self, scenario):
        mask = scenario.truth.sample_mask()
        assert mask.any(), "scenario must inject something"
        faulty = scenario.log.frame.codes
        clean = scenario.clean_log.frame.codes
        np.testing.assert_array_equal(faulty[:, ~mask], clean[:, ~mask])

    def test_injection_changes_the_log(self, scenario):
        assert scenario.digest != scenario.clean_log.frame.digest()

    def test_untouched_sensors_bit_identical(self, scenario):
        affected = set(scenario.truth.affected_sensors)
        for sensor in scenario.log.sensors:
            if sensor in affected:
                continue
            assert (
                scenario.log[sensor].events == scenario.clean_log[sensor].events
            )

    def test_alphabet_never_grows(self, scenario):
        # Injections rearrange/freeze existing states; they never mint
        # events the training period could not have seen.
        for sensor in scenario.truth.affected_sensors:
            assert set(scenario.log[sensor].events) <= set(
                scenario.clean_log[sensor].events
            )

    def test_affected_sensors_exist_and_are_active(self, scenario):
        for sensor in scenario.truth.affected_sensors:
            assert sensor in scenario.log.sensors
            assert scenario.clean_log[sensor].cardinality > 1

    def test_split_geometry(self, scenario):
        train, dev, test, test_truth = scenario.split()
        per_day = scenario.params.samples_per_day
        assert train.num_samples == scenario.params.train_days * per_day
        assert dev.num_samples == scenario.params.dev_days * per_day
        assert test.num_samples == scenario.params.test_samples
        assert test_truth.num_samples == test.num_samples
        # Every injected window survives the test-relative re-basing.
        assert len(test_truth.windows) == len(scenario.truth.windows)

    def test_train_and_dev_are_clean(self, scenario):
        mask = scenario.truth.sample_mask()
        assert not mask[: scenario.params.test_start].any()


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_same_seed_same_digest(self, name):
        first = generate_scenario(name, tier="tiny", seed=23)
        second = generate_scenario(name, tier="tiny", seed=23)
        assert first.digest == second.digest
        assert first.truth == second.truth

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_different_seed_different_digest(self, name):
        assert (
            generate_scenario(name, tier="tiny", seed=1).digest
            != generate_scenario(name, tier="tiny", seed=2).digest
        )

    def test_scenarios_differ_from_each_other(self):
        digests = {
            generate_scenario(name, tier="tiny", seed=11).digest
            for name in ALL_NAMES
        }
        assert len(digests) == len(ALL_NAMES)
