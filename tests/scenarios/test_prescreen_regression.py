"""Detection-quality regression wall for the pair prescreen.

The equivalence tests in ``tests/graph`` prove the prescreen only drops
pairs whose trained dev-BLEU would fall below every informative range;
this suite checks the end-to-end consequence: running the full tiny-tier
scenario library with ``prescreen="bleu"`` must not move per-scenario
mean event recall by more than :data:`RECALL_TOLERANCE` relative to the
unpruned framework.
"""

from __future__ import annotations

import pytest

from repro.scenarios.harness import (
    generate_scenario,
    harness_framework_config,
    run_scenario,
    scenario_names,
)

#: Maximum admissible drop (or gain) in per-scenario mean event recall
#: when the prescreen is enabled.  Pruned pairs score below the
#: detection range's low bound, so in practice the two runs agree
#: exactly; the tolerance absorbs tie-breaking at the alarm threshold.
RECALL_TOLERANCE = 0.02

#: Seeds averaged per scenario.  Two independent draws keep the suite
#: fast while making the comparison a mean rather than a single sample.
SEEDS = (11, 29)


def _mean_recall(name: str, prescreen: str) -> float:
    config = harness_framework_config(prescreen=prescreen)
    recalls = []
    for seed in SEEDS:
        data = generate_scenario(name, tier="tiny", seed=seed)
        report = run_scenario(
            data, detectors=("framework",), framework_config=config
        )
        recalls.append(report.outcome("framework").evaluation.recall)
    return sum(recalls) / len(recalls)


@pytest.mark.parametrize("name", scenario_names())
def test_prescreen_preserves_event_recall(name):
    baseline = _mean_recall(name, prescreen="off")
    pruned = _mean_recall(name, prescreen="bleu")
    assert abs(pruned - baseline) <= RECALL_TOLERANCE, (
        f"scenario {name!r}: mean event recall moved from {baseline:.3f} "
        f"to {pruned:.3f} with prescreen enabled "
        f"(tolerance {RECALL_TOLERANCE})"
    )
