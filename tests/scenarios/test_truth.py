"""Tests for scenario ground-truth containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import GroundTruth, InjectionWindow


def _truth() -> GroundTruth:
    return GroundTruth(
        num_samples=100,
        windows=(
            InjectionWindow(start=10, stop=20, sensors=("s0", "s1"), kind="cascade"),
            InjectionWindow(start=18, stop=25, sensors=("s2",), kind="drift"),
            InjectionWindow(start=50, stop=60, sensors=("s0",), kind="cascade"),
        ),
    )


class TestInjectionWindow:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty or inverted"):
            InjectionWindow(start=5, stop=5, sensors=("s0",), kind="x")

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="before sample 0"):
            InjectionWindow(start=-1, stop=5, sensors=("s0",), kind="x")

    def test_rejects_no_sensors(self):
        with pytest.raises(ValueError, match="at least one sensor"):
            InjectionWindow(start=0, stop=5, sensors=(), kind="x")

    def test_overlap_is_half_open(self):
        window = InjectionWindow(start=10, stop=20, sensors=("s0",), kind="x")
        assert window.overlaps(19, 30)
        assert not window.overlaps(20, 30)
        assert not window.overlaps(0, 10)
        assert window.length == 10


class TestGroundTruth:
    def test_rejects_window_past_log_end(self):
        with pytest.raises(ValueError, match="exceeds"):
            GroundTruth(
                num_samples=10,
                windows=(InjectionWindow(0, 20, ("s0",), "x"),),
            )

    def test_affected_sensors_and_kinds_sorted_unique(self):
        truth = _truth()
        assert truth.affected_sensors == ("s0", "s1", "s2")
        assert truth.kinds == ("cascade", "drift")

    def test_sample_mask_covers_exactly_the_windows(self):
        mask = _truth().sample_mask()
        assert mask.shape == (100,)
        expected = np.zeros(100, dtype=bool)
        expected[10:25] = True
        expected[50:60] = True
        np.testing.assert_array_equal(mask, expected)

    def test_sensor_mask_restricts_to_that_sensors_windows(self):
        mask = _truth().sensor_mask("s2")
        assert mask[18:25].all()
        assert not mask[:18].any() and not mask[25:].any()

    def test_sensors_in_range(self):
        truth = _truth()
        assert truth.sensors_in(0, 15) == ("s0", "s1")
        assert truth.sensors_in(22, 55) == ("s0", "s2")
        assert truth.sensors_in(90, 100) == ()

    def test_intervals_merge_overlapping_windows(self):
        assert _truth().intervals() == [(10, 25), (50, 60)]

    def test_intervals_merge_gap(self):
        assert _truth().intervals(merge_gap=30) == [(10, 60)]

    def test_window_labels_on_a_detector_grid(self):
        # Half-open grid: [5, 15) clips the first injection, [30, 40)
        # is clean, [45, 55) clips the third, [80, 90) is clean.
        labels = _truth().window_labels(starts=[5, 30, 45, 80], span=10)
        np.testing.assert_array_equal(labels, [True, False, True, False])

    def test_slice_clips_and_shifts(self):
        sliced = _truth().slice(15, 55)
        assert sliced.num_samples == 40
        assert [(w.start, w.stop) for w in sliced.windows] == [
            (0, 5),
            (3, 10),
            (35, 40),
        ]

    def test_slice_drops_outside_windows(self):
        sliced = _truth().slice(30, 45)
        assert sliced.windows == ()
        assert not sliced.sample_mask().any()

    def test_to_dict_round_trip(self):
        payload = _truth().to_dict()
        assert payload["num_samples"] == 100
        assert payload["windows"][0] == {
            "start": 10,
            "stop": 20,
            "sensors": ["s0", "s1"],
            "kind": "cascade",
        }
