"""Tests for the sharded streaming detection service.

The load-bearing guarantee: every tenant's subsequence of the merged
fleet feed equals the batch :class:`AnomalyDetector` scores on that
tenant's log, window-for-window — sharding and threading are pure
execution detail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import AnomalyDetector
from repro.graph import ScoreRange
from repro.service import StreamingDetectionService

FULL_RANGE = ScoreRange(0.0, 100.0, inclusive_high=True)

TENANTS = ["line-a", "line-b", "line-c"]


@pytest.fixture(scope="module")
def service_setup(fitted_plant_framework, plant_dataset):
    graph = fitted_plant_framework.graph
    _, _, test = plant_dataset.split(10, 3)
    return graph, test


def _chunks(test, chunk_size: int, limit: int | None = None):
    total = test.num_samples if limit is None else limit
    return [
        {
            name: test[name].events[start : min(start + chunk_size, total)]
            for name in test.sensors
        }
        for start in range(0, total, chunk_size)
    ]


def _drive(service, blocks, tenants=TENANTS):
    for block in blocks:
        for tenant in tenants:
            service.submit(tenant, block)


class TestServiceConstruction:
    def test_duplicate_tenants_rejected(self, service_setup):
        graph, _ = service_setup
        with pytest.raises(ValueError, match="duplicate tenant"):
            StreamingDetectionService(
                graph, ["a", "a"], score_range=FULL_RANGE, autostart=False
            )

    def test_no_tenants_rejected(self, service_setup):
        graph, _ = service_setup
        with pytest.raises(ValueError, match="at least one tenant"):
            StreamingDetectionService(graph, [], score_range=FULL_RANGE)

    def test_per_shard_graphs_must_cover_every_shard(self, service_setup):
        graph, _ = service_setup
        with pytest.raises(ValueError, match="one graph per shard"):
            StreamingDetectionService(
                [graph], TENANTS, num_shards=2, score_range=FULL_RANGE
            )

    def test_unknown_backpressure_rejected(self, service_setup):
        graph, _ = service_setup
        with pytest.raises(ValueError, match="backpressure"):
            StreamingDetectionService(
                graph, TENANTS, backpressure="drop-newest", score_range=FULL_RANGE
            )

    def test_every_tenant_lands_on_exactly_one_shard(self, service_setup):
        graph, _ = service_setup
        service = StreamingDetectionService(
            graph, TENANTS, num_shards=3, score_range=FULL_RANGE, autostart=False
        )
        placed = [t for keys in service.placement.values() for t in keys]
        assert sorted(placed) == sorted(TENANTS)
        service.close()


class TestMergedFeedParity:
    def test_merged_feed_matches_batch_per_tenant(self, service_setup):
        """Satellite acceptance: service feed == batch scores."""
        graph, test = service_setup
        batch = AnomalyDetector(graph, FULL_RANGE).detect(test)
        with StreamingDetectionService(
            graph, TENANTS, num_shards=2, score_range=FULL_RANGE
        ) as service:
            _drive(service, _chunks(test, 37))
            feed = service.merged_feed()

        expected = len(batch.anomaly_scores)
        assert len(feed) == expected * len(TENANTS)
        for tenant in TENANTS:
            windows = [fw.window for fw in feed if fw.tenant == tenant]
            assert [w.window_index for w in windows] == list(range(expected))
            for window in windows:
                np.testing.assert_allclose(
                    window.anomaly_score,
                    batch.anomaly_scores[window.window_index],
                    atol=1e-12,
                )
                assert set(window.broken_pairs) == set(
                    batch.broken_pairs(window.window_index)
                )

    def test_merged_feed_order_is_canonical(self, service_setup):
        graph, test = service_setup
        with StreamingDetectionService(
            graph, TENANTS, num_shards=3, score_range=FULL_RANGE
        ) as service:
            _drive(service, _chunks(test, 64, limit=256))
            feed = service.merged_feed()
        keys = [
            (fw.window.start_sample, fw.window.window_index, fw.shard_id, fw.tenant)
            for fw in feed
        ]
        assert keys == sorted(keys)

    def test_feed_carries_identity_and_latency(self, service_setup):
        graph, test = service_setup
        with StreamingDetectionService(
            graph, TENANTS, num_shards=2, score_range=FULL_RANGE
        ) as service:
            _drive(service, _chunks(test, 64, limit=128))
            feed = service.merged_feed()
        assert feed
        for fleet_window in feed:
            assert fleet_window.tenant in TENANTS
            assert fleet_window.shard_id in service.shards
            assert fleet_window.latency_seconds >= 0.0

    def test_poll_eventually_drains_everything(self, service_setup):
        graph, test = service_setup
        with StreamingDetectionService(
            graph, TENANTS, score_range=FULL_RANGE
        ) as service:
            _drive(service, _chunks(test, 64, limit=128))
            service.join()
            live = service.poll()
            assert service.poll() == []  # drained
            assert len(service.merged_feed()) == len(live)


class TestBackpressure:
    def test_block_policy_is_lossless(self, service_setup):
        graph, test = service_setup
        metrics_blocks = _chunks(test, 8, limit=256)
        with StreamingDetectionService(
            graph,
            TENANTS,
            queue_depth=2,
            backpressure="block",
            score_range=FULL_RANGE,
        ) as service:
            accepted = [
                service.submit(tenant, block)
                for block in metrics_blocks
                for tenant in TENANTS
            ]
            service.join()
            assert all(accepted)
            assert service.metrics.value("service.dropped") == 0

    def test_reject_policy_drops_and_counts(self, service_setup):
        graph, test = service_setup
        blocks = _chunks(test, 4, limit=512)
        service = StreamingDetectionService(
            graph,
            TENANTS[:1],
            queue_depth=1,
            backpressure="reject",
            score_range=FULL_RANGE,
            autostart=False,  # no consumer: the queue must overflow
        )
        accepted = [service.submit(TENANTS[0], block) for block in blocks]
        assert accepted[0] is True
        assert not all(accepted)
        dropped = accepted.count(False)
        assert service.metrics.value("service.dropped") == dropped
        # Drain what was accepted so close() does not hang on queue.join.
        service.start()
        service.close()

    def test_queue_depth_gauge_is_recorded(self, service_setup):
        graph, test = service_setup
        with StreamingDetectionService(
            graph, TENANTS[:1], score_range=FULL_RANGE
        ) as service:
            _drive(service, _chunks(test, 64, limit=64), tenants=TENANTS[:1])
            service.join()
            assert service.metrics.value("service.queue_depth") is not None


class TestQuarantine:
    def test_poisoned_tenant_does_not_stop_the_others(self, service_setup):
        graph, test = service_setup
        batch = AnomalyDetector(graph, FULL_RANGE).detect(test)
        blocks = _chunks(test, 37)
        victim, survivor = "line-a", "line-b"
        bad_block = {
            name: column[: len(column) // 2] if name == test.sensors[0] else column
            for name, column in blocks[1].items()
        }  # misaligned columns: scoring raises inside the worker
        with StreamingDetectionService(
            graph, [victim, survivor], num_shards=1, score_range=FULL_RANGE
        ) as service:
            for index, block in enumerate(blocks):
                service.submit(victim, bad_block if index == 1 else block)
                service.submit(survivor, block)
            feed = service.merged_feed()
            errors = service.errors

        assert victim in errors and survivor not in errors
        assert "not aligned" in str(errors[victim])
        assert service.metrics.value("service.errors") == 1
        # Every later victim chunk was quarantined, not scored.
        assert service.metrics.value("service.quarantined_chunks") == len(blocks) - 2
        # The survivor's stream is complete and correct.
        survivor_windows = [fw.window for fw in feed if fw.tenant == survivor]
        assert len(survivor_windows) == len(batch.anomaly_scores)
        # The victim froze at its pre-fault position: only windows the
        # first block completed.
        victim_windows = [fw.window for fw in feed if fw.tenant == victim]
        assert len(victim_windows) < len(survivor_windows)
        for window in victim_windows:
            np.testing.assert_allclose(
                window.anomaly_score,
                batch.anomaly_scores[window.window_index],
                atol=1e-12,
            )

    def test_submit_for_unknown_tenant_raises(self, service_setup):
        graph, _ = service_setup
        with StreamingDetectionService(
            graph, TENANTS, score_range=FULL_RANGE
        ) as service:
            with pytest.raises(KeyError, match="unknown tenant"):
                service.shards[
                    service.router.shard_of("ghost")
                ].submit("ghost", {})


class TestFlushAndPending:
    def test_fleet_pending_and_flush(self, service_setup):
        graph, test = service_setup
        with StreamingDetectionService(
            graph, TENANTS, num_shards=2, score_range=FULL_RANGE
        ) as service:
            _drive(service, _chunks(test, 37))
            service.join()
            pending = service.pending_samples()
            assert set(pending) == set(TENANTS)
            assert len(set(pending.values())) == 1  # identical streams
            dropped = service.flush()
            assert dropped == {t: pending[t] for t in TENANTS if pending[t]}
            assert all(v == 0 for v in service.pending_samples().values())
