"""Tests for tenant → shard routing."""

from __future__ import annotations

import pytest

from repro.service import ShardRouter


class TestShardRouter:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardRouter(0)

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert {router.shard_of(f"tenant-{i}") for i in range(20)} == {0}

    def test_placement_is_stable(self):
        """The same key must land on the same shard across router
        instances (the built-in ``hash`` is salted per process and
        would scatter a restarted fleet)."""
        keys = [f"drive-{i:04d}" for i in range(50)]
        first = ShardRouter(4)
        second = ShardRouter(4)
        assert [first.shard_of(k) for k in keys] == [
            second.shard_of(k) for k in keys
        ]

    def test_known_placements_pinned(self):
        """Golden values: a change here breaks every existing snapshot."""
        router = ShardRouter(4)
        assert [router.shard_of(k) for k in ("line-a", "line-b", "line-c")] == [
            router.shard_of(k) for k in ("line-a", "line-b", "line-c")
        ]
        # sha256-based placement is fully deterministic, so concrete
        # values can be pinned.
        assert router.shard_of("line-a") == 1
        assert router.shard_of("line-b") == 1
        assert router.shard_of("line-c") == 1

    def test_partition_covers_every_shard_and_key(self):
        keys = [f"sensor-group-{i}" for i in range(17)]
        router = ShardRouter(3)
        groups = router.partition(keys)
        assert sorted(groups) == [0, 1, 2]
        flattened = [k for shard in sorted(groups) for k in groups[shard]]
        assert sorted(flattened) == sorted(keys)
        for shard, members in groups.items():
            assert all(router.shard_of(k) == shard for k in members)

    def test_explicit_assignment_overrides_hash(self):
        router = ShardRouter(4)
        hashed = router.shard_of("hot-tenant")
        target = (hashed + 1) % 4
        router.assign("hot-tenant", target)
        assert router.shard_of("hot-tenant") == target

    def test_assignment_out_of_range_rejected(self):
        router = ShardRouter(2)
        with pytest.raises(ValueError, match="out of range"):
            router.assign("x", 2)

    def test_dict_roundtrip_preserves_routing(self):
        router = ShardRouter(5, assignments={"pinned": 3})
        clone = ShardRouter.from_dict(router.to_dict())
        keys = [f"k{i}" for i in range(30)] + ["pinned"]
        assert [clone.shard_of(k) for k in keys] == [
            router.shard_of(k) for k in keys
        ]
