"""Service snapshot/restore: a restarted fleet resumes mid-stream.

The acceptance scenario: a service is killed mid-stream after a
snapshot; a fresh service restores it and ingests the remainder; the
concatenated merged feed is sample-for-sample identical to a run that
was never interrupted — no window re-scored, none skipped.
"""

from __future__ import annotations

import json

import pytest

from repro.graph import ScoreRange
from repro.service import (
    SERVICE_SNAPSHOT_SCHEMA,
    StreamingDetectionService,
    has_snapshot,
    read_snapshot,
    write_snapshot,
)

FULL_RANGE = ScoreRange(0.0, 100.0, inclusive_high=True)

TENANTS = ["line-a", "line-b", "line-c"]


@pytest.fixture(scope="module")
def snapshot_setup(fitted_plant_framework, plant_dataset):
    graph = fitted_plant_framework.graph
    _, _, test = plant_dataset.split(10, 3)
    return graph, test


def _chunks(test, chunk_size: int):
    return [
        {
            name: test[name].events[start : start + chunk_size]
            for name in test.sensors
        }
        for start in range(0, test.num_samples, chunk_size)
    ]


def _drive(service, blocks):
    for block in blocks:
        for tenant in TENANTS:
            service.submit(tenant, block)


def _feed_key(feed):
    """The merged feed as comparable plain data."""
    return [
        (
            fw.tenant,
            fw.window.window_index,
            fw.window.start_sample,
            fw.window.anomaly_score,
            fw.window.broken_pairs,
        )
        for fw in feed
    ]


class TestSnapshotFiles:
    def test_has_snapshot_requires_a_manifest(self, tmp_path):
        assert not has_snapshot(tmp_path)
        write_snapshot(tmp_path, {"router": {}}, {0: {"tenants": {}}})
        assert has_snapshot(tmp_path)

    def test_roundtrip_preserves_manifest_and_states(self, tmp_path):
        manifest = {"router": {"num_shards": 2, "assignments": {}}}
        states = {
            0: {"shard_id": 0, "tenants": {"a": {"samples_seen": 5}}},
            1: {"shard_id": 1, "tenants": {}},
        }
        write_snapshot(tmp_path, manifest, states)
        loaded_manifest, loaded_states = read_snapshot(tmp_path)
        assert loaded_manifest["schema"] == SERVICE_SNAPSHOT_SCHEMA
        assert loaded_manifest["router"] == manifest["router"]
        assert loaded_states[0]["tenants"]["a"]["samples_seen"] == 5
        assert sorted(loaded_states) == [0, 1]

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no service snapshot"):
            read_snapshot(tmp_path)

    def test_foreign_schema_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"schema": "something-else"})
        )
        with pytest.raises(ValueError, match="schema"):
            read_snapshot(tmp_path)

    def test_manifest_naming_missing_shard_file_rejected(self, tmp_path):
        write_snapshot(tmp_path, {}, {0: {"tenants": {}}})
        (tmp_path / "shard-0000.json").unlink()
        with pytest.raises(ValueError, match="missing shard file"):
            read_snapshot(tmp_path)


class TestServiceRestore:
    def test_killed_service_resumes_sample_for_sample(
        self, snapshot_setup, tmp_path
    ):
        """The acceptance scenario, across a shard-count change."""
        graph, test = snapshot_setup
        blocks = _chunks(test, 37)
        cut = len(blocks) // 2

        # The uninterrupted reference run.
        with StreamingDetectionService(
            graph, TENANTS, num_shards=2, score_range=FULL_RANGE
        ) as reference:
            _drive(reference, blocks)
            expected = _feed_key(reference.merged_feed())
        assert expected

        # First half, snapshot, kill.
        snapshot_dir = tmp_path / "snap"
        first = StreamingDetectionService(
            graph, TENANTS, num_shards=2, score_range=FULL_RANGE
        )
        _drive(first, blocks[:cut])
        first_feed = _feed_key(first.merged_feed())
        first.snapshot(snapshot_dir)
        first.close()
        assert has_snapshot(snapshot_dir)

        # Restore onto a *different* shard layout and finish the stream.
        second = StreamingDetectionService(
            graph, TENANTS, num_shards=3, score_range=FULL_RANGE, autostart=False
        )
        second.restore(snapshot_dir)
        second.start()
        _drive(second, blocks[cut:])
        second_feed = _feed_key(second.merged_feed())
        second.close()

        resumed = sorted(first_feed + second_feed)
        assert resumed == sorted(expected)
        # No window re-scored, none skipped: indices per tenant are a
        # contiguous 0..n-1 run.
        for tenant in TENANTS:
            indices = sorted(k[1] for k in resumed if k[0] == tenant)
            assert indices == list(range(len(indices)))

    def test_restore_rejects_unserved_tenants(self, snapshot_setup, tmp_path):
        graph, test = snapshot_setup
        blocks = _chunks(test, 64)[:2]
        with StreamingDetectionService(
            graph, TENANTS, score_range=FULL_RANGE
        ) as service:
            _drive(service, blocks)
            service.snapshot(tmp_path / "snap")
        smaller = StreamingDetectionService(
            graph, TENANTS[:1], score_range=FULL_RANGE, autostart=False
        )
        with pytest.raises(ValueError, match="does not serve"):
            smaller.restore(tmp_path / "snap")
        smaller.close()

    def test_restore_rejects_mismatched_configuration(
        self, snapshot_setup, tmp_path
    ):
        """State must never land on a differently-configured detector."""
        graph, test = snapshot_setup
        blocks = _chunks(test, 64)[:2]
        with StreamingDetectionService(
            graph, TENANTS, score_range=FULL_RANGE
        ) as service:
            _drive(service, blocks)
            service.snapshot(tmp_path / "snap")
        other = StreamingDetectionService(
            graph,
            TENANTS,
            score_range=FULL_RANGE,
            margin=0.1,  # different thresholds -> different fingerprint
            autostart=False,
        )
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            other.restore(tmp_path / "snap")
        other.close()

    def test_snapshot_then_keep_streaming_then_snapshot_again(
        self, snapshot_setup, tmp_path
    ):
        """Snapshots are checkpoints, not terminal states."""
        graph, test = snapshot_setup
        blocks = _chunks(test, 64)
        snapshot_dir = tmp_path / "snap"
        with StreamingDetectionService(
            graph, TENANTS, score_range=FULL_RANGE
        ) as service:
            _drive(service, blocks[:2])
            service.snapshot(snapshot_dir)
            early_manifest, early_states = read_snapshot(snapshot_dir)
            _drive(service, blocks[2:4])
            service.snapshot(snapshot_dir)
            late_manifest, late_states = read_snapshot(snapshot_dir)
        early = early_states[0]["tenants"][TENANTS[0]]["samples_seen"]
        late = late_states[0]["tenants"][TENANTS[0]]["samples_seen"]
        assert late > early
        assert early_manifest["tenants"] == late_manifest["tenants"]
