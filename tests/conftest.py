"""Shared fixtures: small datasets and fitted frameworks, built once.

``REPRO_TEST_N_JOBS`` (used by the CI executor matrix) selects how many
pair-training workers the shared fitted framework uses; results are
bit-identical across values by design, so the whole suite doubles as an
equivalence check.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import AnalyticsFramework, FrameworkConfig

#: Worker count for shared fitted fixtures (the CI matrix sets 1 and 2).
TEST_N_JOBS: int = int(os.environ.get("REPRO_TEST_N_JOBS", "1"))


@pytest.fixture(scope="session")
def plant_dataset():
    """A small but fully featured plant dataset."""
    return generate_plant_dataset(PlantConfig.small())


@pytest.fixture(scope="session")
def tiny_language_config():
    """Windowing small enough for short synthetic sequences."""
    return LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5)


@pytest.fixture(scope="session")
def related_log():
    """Three sensors: B follows A with a delay; C is independent noise."""
    rng = np.random.default_rng(42)
    total = 600
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF", "OFF"] + a[:-2]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})


@pytest.fixture(scope="session")
def fitted_plant_framework(plant_dataset):
    """Framework fitted on the small plant dataset (n-gram engine)."""
    train, dev, _ = plant_dataset.split(10, 3)
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
        n_jobs=TEST_N_JOBS,
    )
    return AnalyticsFramework(config).fit(train, dev)


@pytest.fixture(scope="session")
def executor_log():
    """Six seeded, inter-related sensors for executor determinism tests.

    Sensors come in lead/follow couples (B lags A, D lags C, F lags E)
    so the pair grid holds both strong and weak relationships; the
    fixed seed makes every build over it reproducible.
    """
    rng = np.random.default_rng(1234)
    total = 480
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    c = [("HI" if (t // 8) % 2 == 0 else "LO") for t in range(total)]
    e = [str(rng.integers(0, 3)) for _ in range(total)]
    return MultivariateEventLog.from_mapping(
        {
            "sA": a,
            "sB": ["OFF", "OFF"] + a[:-2],
            "sC": c,
            "sD": ["LO"] + c[:-1],
            "sE": e,
            "sF": ["0"] + e[:-1],
        }
    )


@pytest.fixture(scope="session")
def executor_language_config():
    """Windowing small enough that the executor log yields dev sentences."""
    return LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5)


@pytest.fixture(scope="session")
def plant_detection(fitted_plant_framework, plant_dataset):
    """Detection result over the plant test period."""
    _, _, test = plant_dataset.split(10, 3)
    return fitted_plant_framework.detect(test)
