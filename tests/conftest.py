"""Shared fixtures: small datasets and fitted frameworks, built once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import AnalyticsFramework, FrameworkConfig


@pytest.fixture(scope="session")
def plant_dataset():
    """A small but fully featured plant dataset."""
    return generate_plant_dataset(PlantConfig.small())


@pytest.fixture(scope="session")
def tiny_language_config():
    """Windowing small enough for short synthetic sequences."""
    return LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5)


@pytest.fixture(scope="session")
def related_log():
    """Three sensors: B follows A with a delay; C is independent noise."""
    rng = np.random.default_rng(42)
    total = 600
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF", "OFF"] + a[:-2]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})


@pytest.fixture(scope="session")
def fitted_plant_framework(plant_dataset):
    """Framework fitted on the small plant dataset (n-gram engine)."""
    train, dev, _ = plant_dataset.split(10, 3)
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    return AnalyticsFramework(config).fit(train, dev)


@pytest.fixture(scope="session")
def plant_detection(fitted_plant_framework, plant_dataset):
    """Detection result over the plant test period."""
    _, _, test = plant_dataset.split(10, 3)
    return fitted_plant_framework.detect(test)
