"""Tests for timeline rendering."""

from __future__ import annotations

import pytest

from repro.report import render_bar, render_timeline


class TestRenderBar:
    def test_full_and_empty(self):
        assert render_bar(1.0, width=10) == "#" * 10
        assert render_bar(0.0, width=10) == " " * 10

    def test_half(self):
        assert render_bar(0.5, width=10) == "#####     "

    def test_fixed_width(self):
        for value in (0.0, 0.33, 0.66, 1.0):
            assert len(render_bar(value, width=17)) == 17

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            render_bar(1.5)


class TestRenderTimeline:
    def test_rows_sorted_by_key(self):
        out = render_timeline({3: 0.1, 1: 0.9, 2: 0.5})
        lines = out.splitlines()
        assert lines[0].startswith("day   1")
        assert lines[2].startswith("day   3")

    def test_labels_appended(self):
        out = render_timeline({21: 0.8}, labels={21: "ANOMALY"})
        assert out.endswith("ANOMALY")

    def test_custom_key_name(self):
        out = render_timeline({0: 0.2}, key_name="window")
        assert out.startswith("window")

    def test_no_trailing_whitespace(self):
        out = render_timeline({1: 0.0, 2: 1.0})
        for line in out.splitlines():
            assert line == line.rstrip()
