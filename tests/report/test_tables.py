"""Tests for ASCII table rendering."""

from __future__ import annotations

from repro.report import ascii_table, format_row


class TestAsciiTable:
    def test_header_and_rows_aligned(self):
        rows = [{"name": "a", "value": 10}, {"name": "bbbb", "value": 2}]
        table = ascii_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len({line.index("|") for line in (lines[0], lines[2], lines[3])}) == 1

    def test_title_rendered(self):
        table = ascii_table([{"x": 1}], title="Table I")
        assert table.splitlines()[0] == "Table I"

    def test_missing_cells_render_empty(self):
        table = ascii_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "3" in table

    def test_empty_rows(self):
        assert "(no rows)" in ascii_table([])
        assert ascii_table([], title="T").startswith("T")

    def test_format_row_padding(self):
        assert format_row(["a", "b"], [3, 3]) == "a   | b  "
