"""Tests for CDF/histogram series builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.report import cdf_at, cdf_series, histogram_series


class TestCdfSeries:
    def test_sorted_and_normalised(self):
        xs, ys = cdf_series([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ys, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, ys = cdf_series([])
        assert xs.size == 0 and ys.size == 0

    def test_cdf_at(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 0.0) == 0.0
        assert cdf_at(values, 10.0) == 1.0
        assert cdf_at([], 1.0) == 0.0


class TestHistogramSeries:
    def test_counts_sum_to_population(self):
        values = np.random.default_rng(0).uniform(0, 100, 500)
        edges, counts = histogram_series(values, bins=10, value_range=(0, 100))
        assert counts.sum() == 500
        assert len(edges) == 11

    def test_explicit_bins(self):
        edges, counts = histogram_series([5, 15, 25], bins=[0, 10, 20, 30])
        np.testing.assert_array_equal(counts, [1, 1, 1])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=60))
def test_property_cdf_monotone_ending_at_one(values):
    xs, ys = cdf_series(values)
    assert (np.diff(xs) >= 0).all()
    assert (np.diff(ys) > 0).all()
    assert ys[-1] == pytest.approx(1.0)
