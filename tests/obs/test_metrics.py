"""Tests for the metrics registry."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.obs import SNAPSHOT_SCHEMA, MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only increase"):
            MetricsRegistry().counter("c").inc(-1)

    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        assert gauge.value is None
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_streaming_summary(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.count == 0 and hist.mean is None
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_time_context_manager_observes(self):
        registry = MetricsRegistry()
        with registry.timer("h") as timer:
            pass
        assert timer.seconds is not None and timer.seconds >= 0.0
        assert registry.histogram("h").count == 1


class TestMerge:
    def test_counters_and_histograms_accumulate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.histogram("h").observe(1.0)
        b.gauge("g").set(7.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.histogram("h").count == 1
        assert a.gauge("g").value == 7.0

    def test_merge_creates_zero_valued_metrics(self):
        """A merged snapshot carries the full catalogue, even untouched
        metrics — consumers assert == 0 instead of special-casing absence."""
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("never_incremented")
        a.merge(b)
        assert "never_incremented" in a
        assert a.value("never_incremented") == 0

    def test_unset_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g")
        a.merge(b)
        assert a.gauge("g").value == 1.0


class TestSnapshot:
    def test_schema_and_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["metrics"]["c"] == {"type": "counter", "value": 1}
        assert snapshot["metrics"]["g"] == {"type": "gauge", "value": 0.5}
        hist = snapshot["metrics"]["h"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 1 and hist["mean"] == 2.0

    def test_write_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        path = registry.write_json(tmp_path / "deep" / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["metrics"]["c"]["value"] == 9


class TestConcurrencyAndPickling:
    def test_threaded_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_pickle_round_trip_preserves_values(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.histogram("h").observe(1.5)
        restored = pickle.loads(pickle.dumps(registry))
        assert restored.counter("c").value == 4
        assert restored.histogram("h").total == 1.5
        # The restored registry is fully usable (lock recreated).
        restored.counter("c").inc()
        assert restored.counter("c").value == 5

    def test_metric_classes_exported(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)
