"""Tests for the structured logging layer."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import ROOT_LOGGER, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _reset_repro_logging():
    """Restore the library's silent default after every test."""
    root = logging.getLogger(ROOT_LOGGER)
    before_handlers = list(root.handlers)
    before_level = root.level
    yield
    for handler in list(root.handlers):
        if handler not in before_handlers:
            root.removeHandler(handler)
    root.setLevel(before_level)


class TestGetLogger:
    def test_root(self):
        assert get_logger().name == ROOT_LOGGER
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER

    def test_prefixes_hierarchy(self):
        assert get_logger("pipeline.executor").name == "repro.pipeline.executor"

    def test_already_prefixed_unchanged(self):
        assert get_logger("repro.detection.online").name == "repro.detection.online"

    def test_unconfigured_library_is_silent(self):
        """The NullHandler default: no 'No handlers' warnings, no output."""
        root = logging.getLogger(ROOT_LOGGER)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestConfigureLogging:
    def test_text_mode_emits_formatted_lines(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        get_logger("test.child").info("hello %s", "world")
        line = stream.getvalue()
        assert "hello world" in line
        assert "repro.test.child" in line

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("WARNING", stream=stream)
        get_logger("test").info("quiet")
        get_logger("test").warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output
        assert "loud" in output

    def test_json_mode_emits_parseable_records_with_extras(self):
        stream = io.StringIO()
        configure_logging("DEBUG", json_mode=True, stream=stream)
        get_logger("test").debug(
            "scored %d windows", 5, extra={"windows": 5, "seconds": 0.25}
        )
        record = json.loads(stream.getvalue())
        assert record["message"] == "scored 5 windows"
        assert record["level"] == "DEBUG"
        assert record["logger"] == "repro.test"
        assert record["windows"] == 5
        assert record["seconds"] == 0.25
        assert "ts" in record

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("INFO", stream=first)
        configure_logging("INFO", stream=second)
        get_logger("test").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_lowercase_level_accepted(self):
        root = configure_logging("debug", stream=io.StringIO())
        assert root.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("CHATTY")

    def test_exception_info_in_json(self):
        stream = io.StringIO()
        configure_logging("ERROR", json_mode=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("test").exception("failed")
        record = json.loads(stream.getvalue())
        assert "boom" in record["exc_info"]
