"""Tests for stopwatches, spans and the timed decorator."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import MetricsRegistry, Stopwatch, configure_logging, get_logger, span, timed


class TestStopwatch:
    def test_elapsed_is_monotonic(self):
        watch = Stopwatch()
        first = watch.elapsed
        second = watch.elapsed
        assert 0.0 <= first <= second

    def test_split_partitions_elapsed(self):
        watch = Stopwatch()
        a = watch.split()
        b = watch.split()
        assert a >= 0.0 and b >= 0.0
        assert watch.elapsed >= a + b

    def test_restart_resets(self):
        watch = Stopwatch()
        watch.split()
        watch.restart()
        assert watch.elapsed < 10.0  # fresh start, not accumulated

    def test_context_manager_restarts(self):
        watch = Stopwatch()
        with watch as inner:
            assert inner is watch


class TestSpan:
    def test_records_histogram(self):
        registry = MetricsRegistry()
        with span("work.seconds", metrics=registry):
            pass
        assert registry.histogram("work.seconds").count == 1

    def test_records_even_on_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span("work.seconds", metrics=registry):
                raise RuntimeError("boom")
        assert registry.histogram("work.seconds").count == 1

    def test_logs_structured_fields(self, _capture_json_logs):
        stream = _capture_json_logs
        with span("work.seconds", logger=get_logger("test"), stage="corpus"):
            pass
        record = json.loads(stream.getvalue())
        assert record["span"] == "work.seconds"
        assert record["stage"] == "corpus"
        assert record["seconds"] >= 0.0


@pytest.fixture
def _capture_json_logs():
    import logging

    from repro.obs import ROOT_LOGGER

    root = logging.getLogger(ROOT_LOGGER)
    before = list(root.handlers)
    before_level = root.level
    stream = io.StringIO()
    configure_logging("DEBUG", json_mode=True, stream=stream)
    yield stream
    for handler in list(root.handlers):
        if handler not in before:
            root.removeHandler(handler)
    root.setLevel(before_level)


class TestTimed:
    def test_with_registry(self):
        registry = MetricsRegistry()

        @timed("f.seconds", metrics=registry)
        def f(x):
            return x + 1

        assert f(1) == 2
        assert registry.histogram("f.seconds").count == 1

    def test_with_attribute_name_resolves_on_self(self):
        class Service:
            def __init__(self):
                self.metrics = MetricsRegistry()

            @timed("service.seconds", metrics="metrics")
            def work(self):
                return "done"

        service = Service()
        assert service.work() == "done"
        assert service.metrics.histogram("service.seconds").count == 1

    def test_missing_attribute_is_noop(self):
        class Bare:
            @timed("bare.seconds", metrics="metrics")
            def work(self):
                return 42

        assert Bare().work() == 42

    def test_preserves_function_metadata(self):
        @timed("g.seconds")
        def g():
            """docstring"""

        assert g.__name__ == "g"
        assert g.__doc__ == "docstring"
