"""End-to-end pipeline with the faithful seq2seq engine.

The fast n-gram engine covers most tests; this integration test runs
the *paper's* neural model through the entire stack — language
generation, Algorithm 1, subgraphs, Algorithm 2, diagnosis — on a
micro-scale system, proving the substitution is drop-in both ways.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import ScoreRange
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import AnalyticsFramework, FrameworkConfig
from repro.translation import NMTConfig


def build_log(total: int, desync: tuple[int, int] | None = None) -> MultivariateEventLog:
    rng = np.random.default_rng(0)
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF", "OFF"] + a[:-2]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    if desync is not None:
        start, stop = desync
        segment = b[start:stop]
        b[start:stop] = segment[3:] + segment[:3]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})


@pytest.fixture(scope="module")
def seq2seq_framework():
    config = FrameworkConfig(
        language=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="seq2seq",
        nmt=NMTConfig(
            embedding_size=10,
            hidden_size=14,
            num_layers=2,
            dropout=0.0,
            training_steps=200,
            batch_size=12,
            learning_rate=5e-3,
            seed=0,
        ),
        detection_range=ScoreRange(60, 100, inclusive_high=True),
        popular_threshold=10,
    )
    return AnalyticsFramework(config).fit(build_log(540), build_log(260))


class TestSeq2SeqPipeline:
    def test_graph_separates_related_pairs(self, seq2seq_framework):
        graph = seq2seq_framework.graph
        assert graph.score("sA", "sB") > graph.score("sA", "sC") + 15

    def test_detection_flags_desync_window(self, seq2seq_framework):
        test_log = build_log(260, desync=(100, 200))
        result = seq2seq_framework.detect(test_log)
        stride = 5
        in_region = [
            result.anomaly_scores[w]
            for w in range(result.num_windows)
            if 100 <= w * stride < 190
        ]
        outside = [
            result.anomaly_scores[w]
            for w in range(result.num_windows)
            if w * stride < 80 or w * stride >= 220
        ]
        assert max(in_region) > max(outside)
        assert max(in_region) >= 0.5

    def test_diagnosis_runs_on_neural_graph(self, seq2seq_framework):
        test_log = build_log(260, desync=(100, 200))
        result = seq2seq_framework.detect(test_log)
        peak = int(np.argmax(result.anomaly_scores))
        diagnosis = seq2seq_framework.diagnose(result, peak)
        assert diagnosis.severity >= 0.0  # runs end to end
