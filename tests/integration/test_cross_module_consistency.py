"""Cross-module consistency checks.

These tests pin down contracts that span packages: the language layer's
window geometry must agree with the framework's window accounting, the
graph's stored scores must agree with re-derived model scores, and the
diagnostics layer must agree with the graph it reads from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import ParallelCorpus, num_windows
from repro.translation import corpus_bleu, diagnose_pair


class TestWindowAccounting:
    def test_framework_window_count_matches_lang_formula(
        self, fitted_plant_framework, plant_dataset
    ):
        _, _, test = plant_dataset.split(10, 3)
        config = fitted_plant_framework.config.language
        words = num_windows(test.num_samples, config.word_size, config.word_stride)
        sentences = num_windows(
            words, config.sentence_length, config.effective_sentence_stride
        )
        assert fitted_plant_framework.windows_per_sample_count(test.num_samples) == sentences
        result = fitted_plant_framework.detect(test)
        assert result.num_windows == sentences


class TestScoreConsistency:
    def test_stored_scores_match_rederived_scores(self, fitted_plant_framework):
        """s(i,j) stored at build time equals the score recomputed from
        the stored model on the same development sentences."""
        graph = fitted_plant_framework.graph
        pair = next(iter(graph.relationships))
        relationship = graph[pair]
        # Per-sentence dev scores must average close to the corpus
        # score's neighborhood (they are different statistics of the
        # same translations, so only loose agreement is required).
        sentence_mean = float(relationship.dev_sentence_scores.mean())
        assert abs(sentence_mean - relationship.score) < 35.0

    def test_detection_training_scores_match_graph(self, fitted_plant_framework, plant_detection):
        graph = fitted_plant_framework.graph
        for column, pair in enumerate(plant_detection.valid_pairs):
            assert plant_detection.training_scores[column] == graph.score(*pair)


class TestDiagnosticsConsistency:
    def test_diagnose_pair_reads_graph_values(self, fitted_plant_framework):
        graph = fitted_plant_framework.graph
        source, target = next(iter(graph.relationships))
        diagnostics = diagnose_pair(graph, source, target)
        assert diagnostics.score == graph.score(source, target)
        assert diagnostics.reverse_score == graph.score(target, source)
        # The breakdown's own score is a valid BLEU.
        assert 0.0 <= diagnostics.breakdown.score <= 100.0


class TestModelReuseAcrossLayers:
    def test_graph_models_translate_like_standalone_models(
        self, fitted_plant_framework
    ):
        """The model stored in a relationship is the same object the
        detector uses; translating twice is deterministic."""
        graph = fitted_plant_framework.graph
        pair = next(iter(graph.relationships))
        model = graph[pair].model
        sentences = graph.corpus[pair[0]].sentences[:5]
        assert model.translate(sentences) == model.translate(sentences)
