"""Failure-injection tests: the pipeline degrades loudly, not silently."""

from __future__ import annotations

import threading
from collections import Counter

import numpy as np
import pytest

from repro.graph import MultivariateRelationshipGraph, ScoreRange
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import AnalyticsFramework, FrameworkConfig
from repro.translation.ngram import NGramTranslator


def small_config() -> FrameworkConfig:
    return FrameworkConfig(
        language=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",
        popular_threshold=10,
    )


def healthy_log(total: int) -> MultivariateEventLog:
    rng = np.random.default_rng(1)
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b})


class TestTrainingFailures:
    def test_all_constant_training_log_fails_clearly(self):
        log = MultivariateEventLog.from_mapping({"a": ["x"] * 100, "b": ["y"] * 100})
        with pytest.raises(ValueError, match="non-constant sensors"):
            AnalyticsFramework(small_config()).fit(log, log)

    def test_too_short_development_log_rejected(self):
        train = healthy_log(400)
        tiny_dev = healthy_log(6)  # shorter than one sentence
        with pytest.raises(ValueError, match="development log too short"):
            AnalyticsFramework(small_config()).fit(train, tiny_dev)

    def test_development_missing_sensor_rejected(self):
        train = healthy_log(400)
        dev = healthy_log(200).select(["sA"])
        with pytest.raises(KeyError):
            AnalyticsFramework(small_config()).fit(train, dev)


class InjectedFailureFactory:
    """Model factory whose models raise mid-fit for one targeted pair.

    ``fail_attempts`` controls how many consecutive fit attempts on the
    target pair blow up: 1 exercises the executor's retry, a large
    value exhausts it so the pair is recorded as skipped.
    """

    def __init__(self, pair: tuple[str, str], fail_attempts: int) -> None:
        self.pair = pair
        self.fail_attempts = fail_attempts
        self.attempts: Counter = Counter()
        self.lock = threading.Lock()

    def __call__(self) -> NGramTranslator:
        factory = self

        class _Model(NGramTranslator):
            def fit(self, corpus):
                key = (corpus.source_sensor, corpus.target_sensor)
                if key == factory.pair:
                    with factory.lock:
                        factory.attempts[key] += 1
                        if factory.attempts[key] <= factory.fail_attempts:
                            raise RuntimeError("injected mid-fit failure")
                return super().fit(corpus)

        return _Model()


def three_sensor_log(total: int) -> MultivariateEventLog:
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    return MultivariateEventLog.from_mapping(
        {"sA": a, "sB": ["OFF"] + a[:-1], "sC": ["OFF", "OFF"] + a[:-2]}
    )


class TestPairFailureInjection:
    """Algorithm 1 degrades per pair: retry once, then skip — never abort."""

    def build(self, factory, n_jobs=4):
        return MultivariateRelationshipGraph.build(
            three_sensor_log(400),
            three_sensor_log(200),
            config=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
            model_factory=factory,
            n_jobs=n_jobs,
            backend="thread",
        )

    def test_transient_failure_is_retried_once_and_recovers(self):
        factory = InjectedFailureFactory(("sA", "sB"), fail_attempts=1)
        graph = self.build(factory)
        assert factory.attempts[("sA", "sB")] == 2  # failed once, retried once
        assert ("sA", "sB") in graph.relationships
        assert graph.build_report.ok
        assert len(graph.relationships) == 6

    def test_persistent_failure_skips_pair_but_completes_others(self):
        factory = InjectedFailureFactory(("sA", "sB"), fail_attempts=99)
        graph = self.build(factory)
        assert factory.attempts[("sA", "sB")] == 2  # one retry, then give up
        assert ("sA", "sB") not in graph.relationships
        assert len(graph.relationships) == 5  # the other pairs still complete

        report = graph.build_report
        assert not report.ok
        [skipped] = report.skipped
        assert skipped.pair == ("sA", "sB")
        assert "injected mid-fit failure" in skipped.error
        assert skipped.attempts == 2
        assert "skipped sA->sB" in report.summary()

    def test_skipped_pair_build_still_detects(self):
        factory = InjectedFailureFactory(("sA", "sB"), fail_attempts=99)
        graph = self.build(factory)
        from repro.detection import AnomalyDetector

        result = AnomalyDetector(graph, ScoreRange(0, 100, inclusive_high=True)).detect(
            three_sensor_log(150)
        )
        assert result.num_windows > 0
        assert ("sA", "sB") not in result.valid_pairs

    def test_every_pair_failing_aborts_loudly(self):
        class _Broken(NGramTranslator):
            def fit(self, corpus):
                raise RuntimeError("injected total failure")

        with pytest.raises(RuntimeError, match="all 2 pair models failed"):
            MultivariateRelationshipGraph.build(
                three_sensor_log(400).select(["sA", "sB"]),
                three_sensor_log(200).select(["sA", "sB"]),
                config=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
                model_factory=_Broken,
                n_jobs=2,
                backend="thread",
            )


class TestDetectionFailures:
    @pytest.fixture(scope="class")
    def framework(self):
        return AnalyticsFramework(
            FrameworkConfig(
                language=LanguageConfig(word_size=4, sentence_length=5),
                engine="ngram",
                detection_range=ScoreRange(0, 100, inclusive_high=True),
                popular_threshold=10,
            )
        ).fit(healthy_log(400), healthy_log(200))

    def test_unseen_states_do_not_crash_detection(self, framework):
        """A sensor reporting a brand-new state maps to <unk> and is
        simply a (very) broken relationship, not an exception."""
        corrupted = MultivariateEventLog.from_mapping(
            {
                "sA": ["MELTDOWN"] * 120,
                "sB": ["OFF"] * 120,
            }
        )
        result = framework.detect(corrupted)
        assert result.num_windows > 0
        assert result.anomaly_scores.max() > 0.4  # clearly anomalous

    def test_test_log_with_extra_sensor_is_fine(self, framework):
        log = healthy_log(120)
        extra = MultivariateEventLog.from_mapping(
            {
                "sA": list(log["sA"].events),
                "sB": list(log["sB"].events),
                "sNEW": ["1", "2"] * 60,
            }
        )
        result = framework.detect(extra)  # unknown sensors ignored
        assert result.num_windows > 0

    def test_missing_required_sensor_raises(self, framework):
        """Detection over a log missing a monitored sensor fails with a
        clear error (no pairs remain) rather than returning quietly."""
        log = healthy_log(120).select(["sA"])
        with pytest.raises(ValueError, match="no valid pair models"):
            framework.detect(log)


class TestCsvCorruption:
    def test_ragged_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="ragged"):
            MultivariateEventLog.from_csv(path)
