"""Failure-injection tests: the pipeline degrades loudly, not silently."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import ScoreRange
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import AnalyticsFramework, FrameworkConfig


def small_config() -> FrameworkConfig:
    return FrameworkConfig(
        language=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",
        popular_threshold=10,
    )


def healthy_log(total: int) -> MultivariateEventLog:
    rng = np.random.default_rng(1)
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b})


class TestTrainingFailures:
    def test_all_constant_training_log_fails_clearly(self):
        log = MultivariateEventLog.from_mapping({"a": ["x"] * 100, "b": ["y"] * 100})
        with pytest.raises(ValueError, match="non-constant sensors"):
            AnalyticsFramework(small_config()).fit(log, log)

    def test_too_short_development_log_rejected(self):
        train = healthy_log(400)
        tiny_dev = healthy_log(6)  # shorter than one sentence
        with pytest.raises(ValueError, match="development log too short"):
            AnalyticsFramework(small_config()).fit(train, tiny_dev)

    def test_development_missing_sensor_rejected(self):
        train = healthy_log(400)
        dev = healthy_log(200).select(["sA"])
        with pytest.raises(KeyError):
            AnalyticsFramework(small_config()).fit(train, dev)


class TestDetectionFailures:
    @pytest.fixture(scope="class")
    def framework(self):
        return AnalyticsFramework(
            FrameworkConfig(
                language=LanguageConfig(word_size=4, sentence_length=5),
                engine="ngram",
                detection_range=ScoreRange(0, 100, inclusive_high=True),
                popular_threshold=10,
            )
        ).fit(healthy_log(400), healthy_log(200))

    def test_unseen_states_do_not_crash_detection(self, framework):
        """A sensor reporting a brand-new state maps to <unk> and is
        simply a (very) broken relationship, not an exception."""
        corrupted = MultivariateEventLog.from_mapping(
            {
                "sA": ["MELTDOWN"] * 120,
                "sB": ["OFF"] * 120,
            }
        )
        result = framework.detect(corrupted)
        assert result.num_windows > 0
        assert result.anomaly_scores.max() > 0.4  # clearly anomalous

    def test_test_log_with_extra_sensor_is_fine(self, framework):
        log = healthy_log(120)
        extra = MultivariateEventLog.from_mapping(
            {
                "sA": list(log["sA"].events),
                "sB": list(log["sB"].events),
                "sNEW": ["1", "2"] * 60,
            }
        )
        result = framework.detect(extra)  # unknown sensors ignored
        assert result.num_windows > 0

    def test_missing_required_sensor_raises(self, framework):
        """Detection over a log missing a monitored sensor fails with a
        clear error (no pairs remain) rather than returning quietly."""
        log = healthy_log(120).select(["sA"])
        with pytest.raises(ValueError, match="no valid pair models"):
            framework.detect(log)


class TestCsvCorruption:
    def test_ragged_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="ragged"):
            MultivariateEventLog.from_csv(path)
