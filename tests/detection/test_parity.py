"""Batch/online detection parity regression suite.

The streaming :class:`OnlineAnomalyDetector` must be a faithful
incremental rendering of the batch :class:`AnomalyDetector`: same valid
pairs, same window indices, same broken-pair sets, same scores.  These
tests pin that contract, including the historical divergence — the
online path used to count dev-BLEU-0.0 pairs the batch path excluded,
silently diluting ``a_t``.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np
import pytest

from repro.detection import AnomalyDetector, OnlineAnomalyDetector, valid_detection_pairs
from repro.graph import MultivariateRelationshipGraph, ScoreRange
from repro.lang import LanguageConfig


#: Accepts every trained pair, so the dev-BLEU-0.0 exclusion is the
#: only filter in play (the range alone would admit a 0.0 score).
FULL_RANGE = ScoreRange(0.0, 100.0, inclusive_high=True)


@pytest.fixture(scope="module")
def parity_setup(fitted_plant_framework, plant_dataset):
    graph = fitted_plant_framework.graph
    _, _, test = plant_dataset.split(10, 3)
    return graph, test


def _zeroed_graph(graph: MultivariateRelationshipGraph):
    """A copy of ``graph`` with one relationship's dev BLEU forced to 0.0."""
    zeroed_pair = next(iter(graph.relationships))
    relationships = dict(graph.relationships)
    relationships[zeroed_pair] = dataclasses.replace(
        relationships[zeroed_pair], score=0.0
    )
    return MultivariateRelationshipGraph(graph.corpus, relationships), zeroed_pair


def _stream(detector: OnlineAnomalyDetector, test, limit: int):
    emitted = []
    for t in range(limit):
        sample = {name: test[name].events[t] for name in test.sensors}
        emitted.extend(detector.push(sample))
    return emitted


class TestValidPairParity:
    def test_batch_and_online_agree_on_valid_pairs(self, parity_setup):
        graph, _ = parity_setup
        batch = AnomalyDetector(graph, FULL_RANGE)
        online = OnlineAnomalyDetector(graph, FULL_RANGE)
        assert online._pairs == batch.valid_pairs()

    def test_zero_score_pair_excluded_on_both_paths(self, parity_setup):
        graph, _ = parity_setup
        zeroed, zeroed_pair = _zeroed_graph(graph)
        shared = valid_detection_pairs(zeroed, FULL_RANGE)
        assert zeroed_pair not in shared
        assert AnomalyDetector(zeroed, FULL_RANGE).valid_pairs() == shared
        assert OnlineAnomalyDetector(zeroed, FULL_RANGE)._pairs == shared

    def test_zero_score_pair_excluded_even_from_zero_based_range(self, parity_setup):
        """``contains(0.0)`` being true must not resurrect the pair."""
        graph, _ = parity_setup
        zeroed, zeroed_pair = _zeroed_graph(graph)
        assert FULL_RANGE.contains(0.0)
        assert zeroed_pair not in valid_detection_pairs(zeroed, FULL_RANGE)

    def test_sensor_restriction_preserves_graph_order(self, parity_setup):
        graph, _ = parity_setup
        all_pairs = valid_detection_pairs(graph, FULL_RANGE)
        kept_sensors = {s for pair in all_pairs[: len(all_pairs) // 2] for s in pair}
        restricted = valid_detection_pairs(graph, FULL_RANGE, kept_sensors)
        assert restricted == [
            pair
            for pair in all_pairs
            if pair[0] in kept_sensors and pair[1] in kept_sensors
        ]


class TestScoreParity:
    def test_sample_by_sample_matches_batch(self, parity_setup):
        graph, test = parity_setup
        batch = AnomalyDetector(graph, FULL_RANGE).detect(test)
        online = OnlineAnomalyDetector(graph, FULL_RANGE)
        limit = online.window_span + 12 * online.window_stride
        emitted = _stream(online, test, limit)

        assert len(emitted) >= 10
        assert [w.window_index for w in emitted] == list(range(len(emitted)))
        for window in emitted:
            np.testing.assert_allclose(
                window.anomaly_score,
                batch.anomaly_scores[window.window_index],
                atol=1e-12,
            )
            assert set(window.broken_pairs) == set(
                batch.broken_pairs(window.window_index)
            )

    def test_parity_holds_with_a_dev_bleu_zero_pair(self, parity_setup):
        """The regression: a never-breakable 0.0 pair must not dilute the
        online ``a_t`` relative to batch."""
        graph, test = parity_setup
        zeroed, _ = _zeroed_graph(graph)
        batch = AnomalyDetector(zeroed, FULL_RANGE).detect(test)
        online = OnlineAnomalyDetector(zeroed, FULL_RANGE)
        limit = online.window_span + 8 * online.window_stride
        emitted = _stream(online, test, limit)

        assert emitted
        for window in emitted:
            np.testing.assert_allclose(
                window.anomaly_score,
                batch.anomaly_scores[window.window_index],
                atol=1e-12,
            )
            assert set(window.broken_pairs) == set(
                batch.broken_pairs(window.window_index)
            )


class TestSentenceCacheValidation:
    def test_cache_stamped_with_log_fingerprint(self, parity_setup):
        from repro.detection.anomaly import SENTENCE_CACHE_KEY

        graph, test = parity_setup
        cache: dict[str, list] = {}
        AnomalyDetector(graph, FULL_RANGE).detect(test, sentence_cache=cache)
        assert SENTENCE_CACHE_KEY in cache

    def test_cache_reuse_for_same_log_allowed(self, parity_setup):
        graph, test = parity_setup
        detector = AnomalyDetector(graph, FULL_RANGE)
        cache: dict[str, list] = {}
        first = detector.detect(test, sentence_cache=cache)
        second = detector.detect(test, sentence_cache=cache)
        np.testing.assert_array_equal(first.anomaly_scores, second.anomaly_scores)

    def test_cache_from_different_log_rejected(self, parity_setup, plant_dataset):
        graph, test = parity_setup
        detector = AnomalyDetector(graph, FULL_RANGE)
        cache: dict[str, list] = {}
        detector.detect(test, sentence_cache=cache)
        other = test.slice(0, len(test[test.sensors[0]].events) // 2)
        with pytest.raises(ValueError, match="different test log"):
            detector.detect(other, sentence_cache=cache)


class TestScenarioParity:
    """Batch/online agreement on a generated fault scenario.

    The plant-fixture tests above stream *normal* data; this pins
    parity on a log with injected anomalies, where broken-pair churn
    actually exercises the incremental bookkeeping.
    """

    @pytest.fixture(scope="class")
    def scenario_setup(self):
        from repro.pipeline.framework import AnalyticsFramework
        from repro.scenarios import generate_scenario, harness_framework_config

        data = generate_scenario("cascade", tier="tiny", seed=11)
        train, dev, test, _ = data.split()
        framework = AnalyticsFramework(harness_framework_config()).fit(train, dev)
        return framework.graph, test

    def test_online_matches_batch_on_faulty_scenario(self, scenario_setup):
        graph, test = scenario_setup
        batch = AnomalyDetector(graph, FULL_RANGE).detect(test)
        online = OnlineAnomalyDetector(graph, FULL_RANGE)
        emitted = _stream(online, test, test.num_samples)

        assert len(emitted) == len(batch.anomaly_scores)
        # The injected cascade must actually break pairs somewhere.
        assert any(window.broken_pairs for window in emitted)
        for window in emitted:
            np.testing.assert_allclose(
                window.anomaly_score,
                batch.anomaly_scores[window.window_index],
                atol=1e-12,
            )
            assert set(window.broken_pairs) == set(
                batch.broken_pairs(window.window_index)
            )


class TestOnlineConfigValidation:
    def test_divergent_sensor_configs_rejected_at_construction(self, parity_setup):
        graph, _ = parity_setup
        monitored = sorted(
            {s for pair in valid_detection_pairs(graph, FULL_RANGE) for s in pair}
        )
        victim = monitored[-1]
        languages = dict(graph.corpus.languages)
        divergent_language = copy.copy(languages[victim])
        divergent_language.config = LanguageConfig(
            word_size=3, word_stride=1, sentence_length=4, sentence_stride=4
        )
        languages[victim] = divergent_language
        corpus = copy.copy(graph.corpus)
        corpus.languages = languages
        broken_graph = MultivariateRelationshipGraph(corpus, graph.relationships)
        with pytest.raises(ValueError, match="divergent language configs"):
            OnlineAnomalyDetector(broken_graph, FULL_RANGE)
