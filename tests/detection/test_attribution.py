"""Tests for per-sensor anomaly attribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import DetectionResult, attribute_anomaly


def make_result(pairs, alerts_row):
    alerts = np.asarray([alerts_row], dtype=bool)
    return DetectionResult(
        valid_pairs=list(pairs),
        anomaly_scores=alerts.mean(axis=1),
        alerts=alerts,
        test_scores=np.zeros_like(alerts, dtype=float),
        training_scores=np.full(len(pairs), 85.0),
    )


class TestAttributeAnomaly:
    def test_guilty_sensor_ranked_first(self):
        # Sensor "x" participates in 3 pairs, all broken; others' pairs intact.
        pairs = [("x", "a"), ("b", "x"), ("x", "c"), ("a", "b"), ("b", "c")]
        result = make_result(pairs, [True, True, True, False, False])
        blames = attribute_anomaly(result, 0)
        assert blames[0].sensor == "x"
        assert blames[0].blame == 1.0
        others = {b.sensor: b.blame for b in blames[1:]}
        assert all(blame < 1.0 for blame in others.values())

    def test_blame_normalised_by_degree(self):
        # Hub has 4 pairs with 1 broken (0.25); leaf has 1 pair broken (1.0).
        pairs = [("hub", "a"), ("hub", "b"), ("hub", "c"), ("hub", "leaf")]
        result = make_result(pairs, [False, False, False, True])
        blames = {b.sensor: b for b in attribute_anomaly(result, 0)}
        assert blames["leaf"].blame == 1.0
        assert blames["hub"].blame == pytest.approx(0.25)

    def test_min_edges_filters_noisy_sensors(self):
        pairs = [("a", "b"), ("a", "c"), ("a", "d")]
        result = make_result(pairs, [True, True, True])
        blames = attribute_anomaly(result, 0, min_edges=3)
        assert [b.sensor for b in blames] == ["a"]

    def test_no_broken_edges_gives_zero_blame(self):
        pairs = [("a", "b"), ("b", "c")]
        result = make_result(pairs, [False, False])
        blames = attribute_anomaly(result, 0)
        assert all(b.blame == 0.0 for b in blames)

    def test_window_out_of_range(self):
        result = make_result([("a", "b")], [False])
        with pytest.raises(IndexError):
            attribute_anomaly(result, 3)

    def test_on_plant_peak_window(self, plant_detection, plant_dataset):
        """At the anomaly peak, top-blamed sensors are mostly disturbed."""
        peak = int(np.argmax(plant_detection.anomaly_scores))
        blames = attribute_anomaly(plant_detection, peak)
        assert blames[0].blame > 0.3
        disturbed = {
            sensor
            for sensors in plant_dataset.disturbed_sensors.values()
            for sensor in sensors
        }
        top = {b.sensor for b in blames[:5]}
        assert top & disturbed, "top blame should include disturbed sensors"
