"""Tests for the sharp-increase disk-failure rule (Figure 12 / Table II)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    DiskEvaluation,
    DriveOutcome,
    detects_failure,
    evaluate_drives,
    sharp_increases,
)


class TestSharpIncreases:
    def test_detects_single_jump(self):
        assert sharp_increases([0.1, 0.1, 0.8]) == [2]

    def test_no_jump_on_flat_trajectory(self):
        assert sharp_increases([0.7, 0.7, 0.7]) == []

    def test_gradual_rise_not_flagged(self):
        scores = np.linspace(0.0, 1.0, 21)  # +0.05 per step
        assert sharp_increases(scores) == []

    def test_threshold_is_strict(self):
        assert sharp_increases([0.0, 0.5]) == []
        assert sharp_increases([0.0, 0.51]) == [1]

    def test_custom_jump(self):
        assert sharp_increases([0.0, 0.3], jump=0.2) == [1]

    def test_short_inputs(self):
        assert sharp_increases([]) == []
        assert sharp_increases([0.9]) == []

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            sharp_increases(np.zeros((2, 2)))


class TestDetectsFailure:
    def test_jump_right_before_failure(self):
        scores = [0.1] * 10 + [0.9]
        assert detects_failure(scores)
        assert detects_failure(scores, tail_windows=2)

    def test_early_jump_outside_tail_window(self):
        scores = [0.1, 0.9] + [0.9] * 10
        assert detects_failure(scores)  # no tail restriction
        assert not detects_failure(scores, tail_windows=3)

    def test_stable_high_scores_not_detected(self):
        """Figure 12b: flat trajectories (even high ones) are misses."""
        assert not detects_failure([0.65] * 12)
        assert not detects_failure([0.05] * 12)


class TestEvaluateDrives:
    def test_recall_counts_only_failed_drives(self):
        trajectories = {
            "f1": [0.1, 0.8],  # failed, detected
            "f2": [0.1, 0.2],  # failed, missed
            "h1": [0.1, 0.9],  # healthy false positive
        }
        evaluation = evaluate_drives(trajectories, failed_drives={"f1", "f2"})
        assert evaluation.recall == pytest.approx(0.5)
        assert evaluation.false_positive_rate == pytest.approx(1.0)

    def test_no_failures_recall_zero(self):
        evaluation = evaluate_drives({"h1": [0.1, 0.1]}, failed_drives=set())
        assert evaluation.recall == 0.0
        assert evaluation.false_positive_rate == 0.0

    def test_outcomes_sorted_by_drive(self):
        evaluation = evaluate_drives(
            {"b": [0.0, 1.0], "a": [0.0, 0.0]}, failed_drives={"a", "b"}
        )
        assert [o.drive for o in evaluation.outcomes] == ["a", "b"]
        assert evaluation.outcomes[1] == DriveOutcome("b", True, True)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=40),
    st.floats(0.05, 1.0),
)
def test_property_jump_indices_valid_and_consistent(scores, jump):
    indices = sharp_increases(scores, jump)
    for t in indices:
        assert 1 <= t < len(scores)
        assert scores[t] - scores[t - 1] > jump
    # Completeness: every qualifying step is reported.
    expected = [t for t in range(1, len(scores)) if scores[t] - scores[t - 1] > jump]
    assert indices == expected
