"""Tests for drift monitoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import AnomalyDetector, assess_drift
from repro.graph import ScoreRange
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import AnalyticsFramework, FrameworkConfig


def make_log(total: int, delay: int = 1, seed: int = 0) -> MultivariateEventLog:
    rng = np.random.default_rng(seed)
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] * delay + a[: total - delay]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})


@pytest.fixture(scope="module")
def framework():
    config = FrameworkConfig(
        language=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",
        detection_range=ScoreRange(60, 100, inclusive_high=True),
        popular_threshold=10,
    )
    return AnalyticsFramework(config).fit(make_log(500), make_log(250))


class TestAssessDrift:
    def test_no_drift_on_same_regime(self, framework):
        result = framework.detect(make_log(250, seed=3))
        report = assess_drift(framework.graph, result)
        assert report.pairs
        assert report.drift_fraction < 0.5
        assert not report.needs_retraining()

    def test_regime_change_flags_most_pairs(self, framework):
        """A persistent change in the A→B actuation delay shifts the
        pair's BLEU distribution for the whole window — drift, not a
        bounded anomaly."""
        shifted_regime = make_log(250, delay=4, seed=4)
        result = framework.detect(shifted_regime)
        report = assess_drift(framework.graph, result)
        assert report.drift_fraction > 0.5
        assert report.needs_retraining()
        for pair in report.drifted_pairs:
            assert pair.p_value < report.alpha

    def test_pair_fields_populated(self, framework):
        result = framework.detect(make_log(250, seed=5))
        report = assess_drift(framework.graph, result)
        for pair in report.pairs:
            assert 0.0 <= pair.ks_statistic <= 1.0
            assert 0.0 <= pair.p_value <= 1.0
            assert 0.0 <= pair.dev_median <= 100.0
            assert 0.0 <= pair.live_median <= 100.0

    def test_empty_report_semantics(self):
        from repro.detection.drift import DriftReport

        report = DriftReport(pairs=(), alpha=0.01)
        assert report.drift_fraction == 0.0
        assert not report.needs_retraining()
