"""Tests for fault diagnosis (Figure 9 machinery)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.detection import DetectionResult, diagnose
from repro.detection.diagnosis import ClusterDiagnosis


def make_result(pairs, alerts):
    alerts = np.asarray(alerts, dtype=bool)
    windows = alerts.shape[0]
    return DetectionResult(
        valid_pairs=list(pairs),
        anomaly_scores=alerts.mean(axis=1),
        alerts=alerts,
        test_scores=np.zeros_like(alerts, dtype=float),
        training_scores=np.full(len(pairs), 85.0),
    )


@pytest.fixture()
def subgraph():
    graph = nx.DiGraph()
    # Cluster 1: a <-> b ; Cluster 2: c <-> d.
    graph.add_edge("a", "b", score=85.0)
    graph.add_edge("b", "a", score=85.0)
    graph.add_edge("c", "d", score=85.0)
    graph.add_edge("d", "c", score=85.0)
    return graph


class TestDiagnose:
    def test_broken_and_normal_edges_partition(self, subgraph):
        result = make_result(
            [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")],
            [[True, True, False, False]],
        )
        diagnosis = diagnose(result, subgraph, window=0)
        assert set(diagnosis.broken_edges) == {("a", "b"), ("b", "a")}
        assert set(diagnosis.normal_edges) == {("c", "d"), ("d", "c")}
        assert diagnosis.severity == pytest.approx(0.5)

    def test_faulty_clusters_identified(self, subgraph):
        result = make_result(
            [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")],
            [[True, True, False, False]],
        )
        diagnosis = diagnose(result, subgraph, window=0)
        faulty = diagnosis.faulty_clusters()
        assert len(faulty) == 1
        assert faulty[0].sensors == frozenset({"a", "b"})
        assert diagnosis.faulty_sensors() == {"a", "b"}

    def test_severe_anomaly_marks_all_clusters(self, subgraph):
        result = make_result(
            [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")],
            [[True, True, True, True]],
        )
        diagnosis = diagnose(result, subgraph, window=0)
        assert diagnosis.severity == 1.0
        assert diagnosis.faulty_sensors() == {"a", "b", "c", "d"}

    def test_alerts_outside_subgraph_ignored(self, subgraph):
        result = make_result([("x", "y")], [[True]])
        diagnosis = diagnose(result, subgraph, window=0)
        assert diagnosis.broken_edges == []
        assert diagnosis.severity == 0.0

    def test_window_out_of_range(self, subgraph):
        result = make_result([("a", "b")], [[False]])
        with pytest.raises(IndexError):
            diagnose(result, subgraph, window=5)


class TestClusterDiagnosis:
    def test_broken_fraction(self):
        cluster = ClusterDiagnosis(frozenset({"a"}), broken_edges=1, total_edges=4)
        assert cluster.broken_fraction == 0.25
        assert not cluster.is_faulty(0.5)
        assert cluster.is_faulty(0.25)

    def test_edgeless_cluster_never_faulty(self):
        cluster = ClusterDiagnosis(frozenset({"a"}), broken_edges=0, total_edges=0)
        assert cluster.broken_fraction == 0.0
        assert not cluster.is_faulty(0.0)


class TestOnPlantPipeline:
    def test_diagnosis_on_peak_window(self, fitted_plant_framework, plant_detection):
        peak = int(np.argmax(plant_detection.anomaly_scores))
        diagnosis = fitted_plant_framework.diagnose(plant_detection, peak)
        assert diagnosis.window == peak
        # At the anomaly peak, some local-subgraph relationships break.
        assert diagnosis.severity > 0.0
