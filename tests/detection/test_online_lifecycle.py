"""Online-detector lifecycle regressions: atomicity, parity, residuals.

Pins the three contracts the streaming service depends on:

- a scoring failure mid-ingest rolls the detector back to its pre-call
  state, so a retried ``push_chunk`` reproduces the uninterrupted run
  exactly (no double-scored window, no desynchronised window clock);
- ``push`` and ``push_chunk`` intern unseen states through the same
  :class:`~repro.core.StateTable` mapping, so both ingest paths emit
  identical :class:`WindowScore`\\ s on never-seen data;
- trailing samples that cannot complete a window are visible via
  ``pending_samples`` and only discarded by an explicit ``flush()``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.detection import OnlineAnomalyDetector
from repro.graph import MultivariateRelationshipGraph, ScoreRange

FULL_RANGE = ScoreRange(0.0, 100.0, inclusive_high=True)


@pytest.fixture(scope="module")
def lifecycle_setup(fitted_plant_framework, plant_dataset):
    graph = fitted_plant_framework.graph
    _, _, test = plant_dataset.split(10, 3)
    return graph, test


def _chunk(test, start: int, stop: int):
    return {name: test[name].events[start:stop] for name in test.sensors}


class _FlakyModel:
    """Translation model that fails on the Nth translate call."""

    def __init__(self, inner, fail_on_call: int):
        self._inner = inner
        self._fail_on_call = fail_on_call
        self.calls = 0

    def translate(self, sentences):
        self.calls += 1
        if self.calls == self._fail_on_call:
            raise RuntimeError("injected translate fault")
        return self._inner.translate(sentences)


def _flaky_graph(graph: MultivariateRelationshipGraph, fail_on_call: int):
    """A graph copy whose first relationship's model fails once."""
    pair = next(iter(graph.relationships))
    relationships = dict(graph.relationships)
    flaky = _FlakyModel(relationships[pair].model, fail_on_call)
    relationships[pair] = dataclasses.replace(relationships[pair], model=flaky)
    return MultivariateRelationshipGraph(graph.corpus, relationships), flaky


class TestFailureAtomicity:
    def test_failed_ingest_rolls_back_completely(self, lifecycle_setup):
        graph, test = lifecycle_setup
        # Fail while scoring the *second* window of a multi-window
        # chunk, so the rollback must also undo the first window.
        flaky_graph, _ = _flaky_graph(graph, fail_on_call=2)
        detector = OnlineAnomalyDetector(flaky_graph, FULL_RANGE)
        span, stride = detector.window_span, detector.window_stride
        chunk = _chunk(test, 0, span + 2 * stride)

        with pytest.raises(RuntimeError, match="injected translate fault"):
            detector.push_chunk(chunk)

        assert detector.samples_seen == 0
        assert detector.windows_emitted == 0
        assert detector.pending_samples == 0
        assert all(not buffer for buffer in detector._buffers.values())
        assert detector.metrics.value("online.samples_ingested") == 0
        assert detector.metrics.value("online.windows_scored") == 0

    def test_retry_after_fault_matches_uninterrupted_run(self, lifecycle_setup):
        graph, test = lifecycle_setup
        span = OnlineAnomalyDetector(graph, FULL_RANGE).window_span
        stride = OnlineAnomalyDetector(graph, FULL_RANGE).window_stride
        boundaries = [0, span + stride, span + 3 * stride, span + 6 * stride]
        chunks = [
            _chunk(test, start, stop)
            for start, stop in zip(boundaries, boundaries[1:])
        ]

        clean = OnlineAnomalyDetector(graph, FULL_RANGE)
        expected = [w for chunk in chunks for w in clean.push_chunk(chunk)]
        assert expected, "the workload must emit windows"

        flaky_graph, flaky = _flaky_graph(graph, fail_on_call=3)
        detector = OnlineAnomalyDetector(flaky_graph, FULL_RANGE)
        emitted = []
        for chunk in chunks:
            try:
                emitted.extend(detector.push_chunk(chunk))
            except RuntimeError:
                # The fault consumed its one failure; the same call
                # retried must pick up exactly where the stream was.
                emitted.extend(detector.push_chunk(chunk))
        assert flaky.calls > 3, "the injected fault must have fired"

        assert [w.window_index for w in emitted] == [
            w.window_index for w in expected
        ]
        for ours, theirs in zip(emitted, expected):
            assert ours.start_sample == theirs.start_sample
            np.testing.assert_allclose(
                ours.anomaly_score, theirs.anomaly_score, atol=1e-12
            )
            assert ours.broken_pairs == theirs.broken_pairs
        assert detector.windows_emitted == clean.windows_emitted
        assert detector.samples_seen == clean.samples_seen

    def test_failed_push_does_not_desync_the_window_clock(self, lifecycle_setup):
        """Sample-wise variant: one poisoned push retried mid-window."""
        graph, test = lifecycle_setup
        clean = OnlineAnomalyDetector(graph, FULL_RANGE)
        limit = clean.window_span + 2 * clean.window_stride
        expected = []
        for t in range(limit):
            sample = {name: test[name].events[t] for name in test.sensors}
            expected.extend(clean.push(sample))

        flaky_graph, _ = _flaky_graph(graph, fail_on_call=1)
        detector = OnlineAnomalyDetector(flaky_graph, FULL_RANGE)
        emitted = []
        for t in range(limit):
            sample = {name: test[name].events[t] for name in test.sensors}
            try:
                emitted.extend(detector.push(sample))
            except RuntimeError:
                emitted.extend(detector.push(sample))
        assert [(w.window_index, w.start_sample) for w in emitted] == [
            (w.window_index, w.start_sample) for w in expected
        ]


class TestUnseenStateParity:
    def test_push_and_push_chunk_agree_on_unseen_states(self, lifecycle_setup):
        """Both ingest paths must intern never-seen states identically."""
        graph, test = lifecycle_setup
        sample_wise = OnlineAnomalyDetector(graph, FULL_RANGE)
        chunk_wise = OnlineAnomalyDetector(graph, FULL_RANGE)
        limit = sample_wise.window_span + 2 * sample_wise.window_stride

        # Poison a stretch of one monitored sensor with a state no
        # training log contains; both paths must map it to the same
        # unknown code and therefore score identical windows.
        victim = sample_wise._sensors[0]
        columns = {
            name: list(test[name].events[:limit]) for name in test.sensors
        }
        for t in range(5, limit, 7):
            columns[victim][t] = "NEVER-SEEN-STATE"

        from_push = []
        for t in range(limit):
            sample = {name: columns[name][t] for name in columns}
            from_push.extend(sample_wise.push(sample))
        from_chunks = chunk_wise.push_chunk(columns)

        assert from_push, "the workload must emit windows"
        assert from_push == from_chunks
        unknown = graph.corpus[victim].encoder.table.unknown_code
        assert unknown in sample_wise._buffers[victim] or any(
            w.broken_pairs for w in from_push
        )

    def test_unseen_state_lands_on_the_unknown_code(self, lifecycle_setup):
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        victim = detector._sensors[0]
        sample = {name: test[name].events[0] for name in test.sensors}
        sample[victim] = "NEVER-SEEN-STATE"
        detector.push(sample)
        table = graph.corpus[victim].encoder.table
        assert detector._buffers[victim][-1] == table.unknown_code


class TestResidualSamples:
    """The plant fixture's windows overlap (span 13, stride 8), so the
    pending tail is every sample at or past the next window's start —
    including the overlap a future window still needs."""

    def test_pending_samples_tracks_the_tail(self, lifecycle_setup):
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        span, stride = detector.window_span, detector.window_stride
        total = span + 3  # 3 samples short of completing window 1
        detector.push_chunk(_chunk(test, 0, total))
        assert detector.windows_emitted == 1
        expected_tail = total - stride
        assert detector.pending_samples == expected_tail
        assert detector.metrics.value("online.pending_samples") == expected_tail

    def test_stream_from_reader_leaves_tail_visible(self, lifecycle_setup):
        """The regression: trailing samples must not vanish silently."""
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        span, stride = detector.window_span, detector.window_stride
        total = span + stride + 3  # ends mid-way through window 2
        chunks = [
            _chunk(test, start, min(start + 10, total))
            for start in range(0, total, 10)
        ]
        windows = list(detector.stream_from_reader(chunks))
        assert len(windows) == 2
        assert detector.pending_samples == total - 2 * stride

    def test_flush_discards_tail_and_keeps_clock_consistent(self, lifecycle_setup):
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        span, stride = detector.window_span, detector.window_stride
        total = span + 3
        detector.push_chunk(_chunk(test, 0, total))
        tail = detector.pending_samples
        assert tail == total - stride
        assert detector.flush() == tail
        assert detector.pending_samples == 0
        assert detector.samples_seen == stride
        assert detector.metrics.value("online.samples_flushed") == tail

        # Continue the stream: after a flush the clock behaves as if
        # the discarded samples never arrived — the next full span of
        # samples completes window 1.
        more = detector.push_chunk(_chunk(test, total, total + span))
        assert [w.window_index for w in more] == [1]

    def test_flush_is_idempotent(self, lifecycle_setup):
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        assert detector.flush() == 0  # nothing buffered yet
        detector.push_chunk(_chunk(test, 0, detector.window_span + 3))
        assert detector.flush() > 0
        assert detector.flush() == 0
        assert detector.windows_emitted == 1


class TestSnapshotRestore:
    def test_state_roundtrip_resumes_exactly(self, lifecycle_setup):
        graph, test = lifecycle_setup
        reference = OnlineAnomalyDetector(graph, FULL_RANGE)
        span, stride = reference.window_span, reference.window_stride
        cut = span + stride + 2
        total = span + 4 * stride
        expected = reference.push_chunk(_chunk(test, 0, total))

        first = OnlineAnomalyDetector(graph, FULL_RANGE)
        before = first.push_chunk(_chunk(test, 0, cut))
        state = first.state_dict()

        second = OnlineAnomalyDetector(graph, FULL_RANGE)
        second.load_state_dict(state)
        after = second.push_chunk(_chunk(test, cut, total))

        assert before + after == expected

    def test_state_dict_is_json_serialisable(self, lifecycle_setup):
        import json

        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        detector.push_chunk(_chunk(test, 0, detector.window_span + 1))
        state = json.loads(json.dumps(detector.state_dict()))
        fresh = OnlineAnomalyDetector(graph, FULL_RANGE)
        fresh.load_state_dict(state)
        assert fresh.samples_seen == detector.samples_seen
        assert fresh.windows_emitted == detector.windows_emitted

    def test_fingerprint_mismatch_rejected(self, lifecycle_setup):
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        state = detector.state_dict()
        other = OnlineAnomalyDetector(graph, FULL_RANGE, margin=0.1)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            other.load_state_dict(state)

    def test_inconsistent_buffer_lengths_rejected(self, lifecycle_setup):
        graph, test = lifecycle_setup
        detector = OnlineAnomalyDetector(graph, FULL_RANGE)
        detector.push_chunk(_chunk(test, 0, 5))
        state = detector.state_dict()
        state["samples_seen"] = 99
        fresh = OnlineAnomalyDetector(graph, FULL_RANGE)
        with pytest.raises(ValueError, match="clocks imply"):
            fresh.load_state_dict(state)
