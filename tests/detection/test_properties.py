"""Property-based tests over the detection layer's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import DetectionResult, evaluate_days
from repro.detection.attribution import attribute_anomaly


def result_from_alert_matrix(alerts: np.ndarray) -> DetectionResult:
    pairs = [(f"s{i}", f"t{i}") for i in range(alerts.shape[1])]
    return DetectionResult(
        valid_pairs=pairs,
        anomaly_scores=alerts.mean(axis=1),
        alerts=alerts,
        test_scores=np.where(alerts, 10.0, 90.0),
        training_scores=np.full(len(pairs), 85.0),
    )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.booleans(), min_size=3, max_size=6),
        min_size=1,
        max_size=10,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
)
def test_property_anomaly_score_equals_broken_fraction(rows):
    alerts = np.asarray(rows, dtype=bool)
    result = result_from_alert_matrix(alerts)
    for window in range(result.num_windows):
        expected = len(result.broken_pairs(window)) / result.num_valid_pairs
        assert result.anomaly_scores[window] == pytest.approx(expected)
        assert 0.0 <= result.anomaly_scores[window] <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.booleans(), min_size=3, max_size=6),
        min_size=1,
        max_size=8,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
)
def test_property_blame_bounded_and_consistent(rows):
    alerts = np.asarray(rows, dtype=bool)
    result = result_from_alert_matrix(alerts)
    for window in range(result.num_windows):
        blames = attribute_anomaly(result, window)
        for blame in blames:
            assert 0.0 <= blame.blame <= 1.0
            assert blame.broken_edges <= blame.total_edges
        # Sum of per-sensor broken counts is twice the broken pairs
        # (each pair blames both endpoints).
        total_broken = sum(b.broken_edges for b in blames)
        assert total_broken == 2 * len(result.broken_pairs(window))


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.integers(1, 30),
        st.floats(0.0, 1.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    st.sets(st.integers(1, 30), max_size=4),
)
def test_property_day_evaluation_partitions_alarm_days(day_scores, anomaly_days):
    evaluation = evaluate_days(day_scores, sorted(anomaly_days), threshold=0.5)
    # Every anomaly day is either detected or missed, never both.
    assert set(evaluation.detected_days) | set(evaluation.missed_days) == anomaly_days
    assert not set(evaluation.detected_days) & set(evaluation.missed_days)
    # Non-anomaly alarms split into early warnings and false alarms.
    alarm_days = {
        day
        for day, score in day_scores.items()
        if score >= 0.5 and day not in anomaly_days
    }
    assert set(evaluation.early_warning_days) | set(evaluation.false_alarm_days) == alarm_days
    assert 0.0 <= evaluation.recall <= 1.0
    assert 0.0 <= evaluation.precision <= 1.0
