"""Tests for alarm-episode extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import DetectionResult, extract_episodes


def result_from_scores(scores, pairs=2):
    scores = np.asarray(scores, dtype=float)
    windows = len(scores)
    alerts = np.zeros((windows, pairs), dtype=bool)
    for t, score in enumerate(scores):
        broken = int(round(score * pairs))
        alerts[t, :broken] = True
    return DetectionResult(
        valid_pairs=[(f"s{i}", f"t{i}") for i in range(pairs)],
        anomaly_scores=alerts.mean(axis=1),
        alerts=alerts,
        test_scores=np.zeros_like(alerts, dtype=float),
        training_scores=np.full(pairs, 85.0),
    )


class TestExtractEpisodes:
    def test_no_episodes_when_quiet(self):
        result = result_from_scores([0.0, 0.0, 0.0])
        assert extract_episodes(result) == []

    def test_contiguous_windows_form_one_episode(self):
        result = result_from_scores([0.0, 1.0, 1.0, 1.0, 0.0])
        episodes = extract_episodes(result)
        assert len(episodes) == 1
        episode = episodes[0]
        assert (episode.start_window, episode.end_window) == (1, 3)
        assert episode.duration_windows == 3
        assert episode.peak_score == 1.0

    def test_gap_merging(self):
        scores = [1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]
        merged = extract_episodes(result_from_scores(scores), merge_gap=1)
        assert len(merged) == 2  # first two merge across the 1-gap
        strict = extract_episodes(result_from_scores(scores), merge_gap=0)
        assert len(strict) == 3

    def test_peak_window_within_episode(self):
        result = result_from_scores([0.0, 0.5, 1.0, 0.5, 0.0])
        episode = extract_episodes(result)[0]
        assert episode.peak_window == 2
        assert episode.overlaps(2)
        assert not episode.overlaps(0)

    def test_top_sensors_attached(self):
        result = result_from_scores([1.0])
        episode = extract_episodes(result, top_sensors=2)[0]
        assert len(episode.top_sensors) == 2

    def test_invalid_merge_gap(self):
        with pytest.raises(ValueError):
            extract_episodes(result_from_scores([1.0]), merge_gap=-1)

    def test_plant_anomalies_form_distinct_episodes(
        self, fitted_plant_framework, plant_detection, plant_dataset
    ):
        episodes = extract_episodes(plant_detection, threshold=0.5, merge_gap=2)
        assert len(episodes) >= 2  # the two anomaly days, at least
        for episode in episodes:
            assert episode.peak_score >= 0.5
            assert episode.top_sensors
