"""Tests for Algorithm 2: anomaly scoring over a testing log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import AnomalyDetector
from repro.graph import PairwiseRelationship, ScoreRange


class TestValidPairs:
    def test_pairs_filtered_by_range(self, fitted_plant_framework):
        graph = fitted_plant_framework.graph
        detector = AnomalyDetector(graph, ScoreRange(80, 90))
        for source, target in detector.valid_pairs():
            assert 80 <= graph.score(source, target) < 90

    def test_pairs_restricted_to_available_sensors(self, fitted_plant_framework):
        graph = fitted_plant_framework.graph
        detector = AnomalyDetector(graph, ScoreRange(0, 100, inclusive_high=True))
        subset = graph.sensors[:3]
        pairs = detector.valid_pairs(subset)
        assert all(s in subset and t in subset for s, t in pairs)

    def test_zero_score_pair_is_never_a_valid_edge(self, fitted_plant_framework):
        """Regression: a pair whose dev BLEU is exactly 0.0 (e.g. an
        empty/degenerate dev corpus) must not enter Algorithm 2's
        broken-pair ratio even when the score range starts at 0."""
        import copy

        graph = copy.copy(fitted_plant_framework.graph)
        graph.relationships = dict(graph.relationships)
        graph.relationships[("zX", "zY")] = PairwiseRelationship(
            source="zX", target="zY", model=None, score=0.0
        )
        detector = AnomalyDetector(graph, ScoreRange(0, 100, inclusive_high=True))
        pairs = detector.valid_pairs()
        assert ("zX", "zY") not in pairs
        assert pairs  # the real pairs are unaffected

    def test_zero_score_pair_does_not_dilute_anomaly_ratio(
        self, fitted_plant_framework, plant_dataset
    ):
        import copy

        _, _, test = plant_dataset.split(10, 3)
        score_range = ScoreRange(0, 100, inclusive_high=True)
        baseline = AnomalyDetector(fitted_plant_framework.graph, score_range).detect(test)

        graph = copy.copy(fitted_plant_framework.graph)
        graph.relationships = dict(graph.relationships)
        degenerate = next(iter(graph.relationships))
        rel = graph.relationships[degenerate]
        graph.relationships[degenerate] = PairwiseRelationship(
            source=rel.source, target=rel.target, model=rel.model, score=0.0
        )
        result = AnomalyDetector(graph, score_range).detect(test)
        assert degenerate not in result.valid_pairs
        assert result.num_valid_pairs == baseline.num_valid_pairs - 1

    def test_empty_range_raises_on_detect(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        graph = fitted_plant_framework.graph
        # A range guaranteed empty: scores are never negative.
        empty_range = ScoreRange(0, 1e-9)
        detector = AnomalyDetector(graph, empty_range)
        with pytest.raises(ValueError, match="no valid pair models"):
            detector.detect(test)


class TestDetectionResult:
    def test_scores_bounded_zero_one(self, plant_detection):
        scores = plant_detection.anomaly_scores
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_score_equals_broken_fraction(self, plant_detection):
        result = plant_detection
        for window in range(0, result.num_windows, 17):
            broken = len(result.broken_pairs(window))
            expected = broken / result.num_valid_pairs
            assert result.anomaly_scores[window] == pytest.approx(expected)

    def test_alert_matrix_shape(self, plant_detection):
        result = plant_detection
        assert result.alerts.shape == (result.num_windows, result.num_valid_pairs)
        assert result.test_scores.shape == result.alerts.shape

    def test_alerts_consistent_with_thresholds(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        detector = AnomalyDetector(
            fitted_plant_framework.graph,
            fitted_plant_framework.config.detection_range,
            threshold="train",
        )
        result = detector.detect(test)
        expected = result.test_scores < result.training_scores[None, :]
        np.testing.assert_array_equal(result.alerts, expected)

    def test_anomalous_windows_threshold(self, plant_detection):
        windows = plant_detection.anomalous_windows(0.5)
        for w in windows:
            assert plant_detection.anomaly_scores[w] >= 0.5

    def test_max_score(self, plant_detection):
        assert plant_detection.max_score() == plant_detection.anomaly_scores.max()


class TestDetectorValidation:
    def test_negative_margin_rejected(self, fitted_plant_framework):
        with pytest.raises(ValueError):
            AnomalyDetector(fitted_plant_framework.graph, margin=-1.0)

    def test_bad_threshold_strategy_rejected(self, fitted_plant_framework):
        with pytest.raises(ValueError):
            AnomalyDetector(fitted_plant_framework.graph, threshold="vibes")

    def test_bad_quantile_rejected(self, fitted_plant_framework):
        with pytest.raises(ValueError):
            AnomalyDetector(fitted_plant_framework.graph, quantile=1.5)

    def test_short_test_log_rejected(self, fitted_plant_framework, plant_dataset):
        tiny = plant_dataset.log.slice(0, 3)
        with pytest.raises(ValueError, match="too short"):
            fitted_plant_framework.detector.detect(tiny)


class TestDetectionQuality:
    def test_anomaly_days_score_above_normal_days(
        self, fitted_plant_framework, plant_dataset, plant_detection
    ):
        """The injected anomalies dominate the anomaly-score timeline."""
        config = fitted_plant_framework.config.language
        per_day_max: dict[int, float] = {}
        spd = plant_dataset.config.samples_per_day
        for window in range(plant_detection.num_windows):
            start = window * config.effective_sentence_stride * config.word_stride
            day = 14 + start // spd
            score = plant_detection.anomaly_scores[window]
            per_day_max[day] = max(per_day_max.get(day, 0.0), score)
        anomaly_peak = min(per_day_max[d] for d in (21, 28))
        normal_days = [
            d for d in per_day_max
            if d not in plant_dataset.anomaly_days and d not in plant_dataset.precursor_days
        ]
        normal_peak = max(per_day_max[d] for d in normal_days)
        assert anomaly_peak > normal_peak

    def test_margin_reduces_alerts(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        graph = fitted_plant_framework.graph
        r = fitted_plant_framework.config.detection_range
        strict = AnomalyDetector(graph, r, margin=0.0).detect(test)
        slack = AnomalyDetector(graph, r, margin=20.0).detect(test)
        assert slack.alerts.sum() <= strict.alerts.sum()

    def test_dev_min_threshold_quieter_than_train(
        self, fitted_plant_framework, plant_dataset
    ):
        _, _, test = plant_dataset.split(10, 3)
        graph = fitted_plant_framework.graph
        r = fitted_plant_framework.config.detection_range
        train_alerts = AnomalyDetector(graph, r, threshold="train").detect(test)
        devmin_alerts = AnomalyDetector(graph, r, threshold="dev-min").detect(test)
        assert devmin_alerts.alerts.sum() <= train_alerts.alerts.sum()
