"""Tests for streaming anomaly detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import AnomalyDetector, OnlineAnomalyDetector
from repro.graph import ScoreRange


@pytest.fixture(scope="module")
def online_setup(fitted_plant_framework, plant_dataset):
    graph = fitted_plant_framework.graph
    score_range = fitted_plant_framework.config.detection_range
    _, _, test = plant_dataset.split(10, 3)
    return graph, score_range, test


class TestOnlineAnomalyDetector:
    def test_empty_range_rejected(self, online_setup):
        graph, _, _ = online_setup
        with pytest.raises(ValueError):
            OnlineAnomalyDetector(graph, ScoreRange(0, 1e-9))

    def test_window_geometry(self, online_setup):
        graph, score_range, _ = online_setup
        detector = OnlineAnomalyDetector(graph, score_range)
        config = graph.corpus[graph.sensors[0]].config
        assert detector.window_span == config.samples_per_sentence()
        assert detector.window_stride == config.effective_sentence_stride

    def test_no_emission_before_first_window_completes(self, online_setup):
        graph, score_range, test = online_setup
        detector = OnlineAnomalyDetector(graph, score_range)
        emitted = []
        for t in range(detector.window_span - 1):
            sample = {name: test[name].events[t] for name in test.sensors}
            emitted.extend(detector.push(sample))
        assert emitted == []

    def test_streaming_matches_batch_detection(self, online_setup):
        """Pushing the test log sample-by-sample reproduces the batch
        Algorithm 2 scores exactly."""
        graph, score_range, test = online_setup
        batch = AnomalyDetector(graph, score_range).detect(test)

        detector = OnlineAnomalyDetector(graph, score_range)
        emitted = []
        limit = detector.window_span + 20 * detector.window_stride
        for t in range(limit):
            sample = {name: test[name].events[t] for name in test.sensors}
            emitted.extend(detector.push(sample))

        assert len(emitted) >= 10
        for window in emitted:
            np.testing.assert_allclose(
                window.anomaly_score,
                batch.anomaly_scores[window.window_index],
                atol=1e-12,
            )
            assert set(window.broken_pairs) == set(
                batch.broken_pairs(window.window_index)
            )

    def test_missing_sensor_rejected(self, online_setup):
        graph, score_range, test = online_setup
        detector = OnlineAnomalyDetector(graph, score_range)
        with pytest.raises(KeyError, match="missing monitored sensors"):
            detector.push({"not-a-sensor": "ON"})

    def test_buffers_stay_bounded(self, online_setup):
        graph, score_range, test = online_setup
        detector = OnlineAnomalyDetector(graph, score_range)
        for t in range(detector.window_span + 12 * detector.window_stride):
            sample = {name: test[name].events[t] for name in test.sensors}
            detector.push(sample)
        longest = max(len(buffer) for buffer in detector._buffers.values())
        assert longest <= detector.window_span + detector.window_stride
