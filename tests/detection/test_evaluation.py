"""Tests for day-level and event-level detection evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import (
    evaluate_days,
    evaluate_events,
    intervals_from_scores,
    merge_intervals,
    threshold_sweep,
)


SCORES = {
    14: 0.1, 15: 0.1, 16: 0.1, 17: 0.1, 18: 0.2,
    19: 0.6, 20: 0.7,      # early warnings before day 21
    21: 0.8,               # anomaly, detected
    22: 0.1, 23: 0.1, 24: 0.6,   # isolated false alarm
    25: 0.1, 26: 0.1, 27: 0.55,  # early warning before 28
    28: 0.3,               # anomaly, missed at threshold 0.5
    29: 0.1, 30: 0.1,
}


class TestEvaluateDays:
    def test_classification_of_each_day(self):
        result = evaluate_days(SCORES, anomaly_days=[21, 28], threshold=0.5)
        assert result.detected_days == (21,)
        assert result.missed_days == (28,)
        assert result.early_warning_days == (19, 20, 27)
        assert result.false_alarm_days == (24,)

    def test_metrics(self):
        result = evaluate_days(SCORES, anomaly_days=[21, 28], threshold=0.5)
        assert result.recall == pytest.approx(0.5)
        # 4 useful alarms (1 detection + 3 early warnings) of 5 total.
        assert result.precision == pytest.approx(4 / 5)
        assert 0 < result.f1 < 1

    def test_early_window_zero_disables_credit(self):
        result = evaluate_days(
            SCORES, anomaly_days=[21, 28], threshold=0.5, early_warning_window=0
        )
        assert result.early_warning_days == ()
        assert set(result.false_alarm_days) == {19, 20, 24, 27}

    def test_no_anomalies(self):
        result = evaluate_days({1: 0.9}, anomaly_days=[], threshold=0.5)
        assert result.recall == 0.0
        assert result.false_alarm_days == (1,)

    def test_missing_day_score_counts_as_missed(self):
        result = evaluate_days({1: 0.1}, anomaly_days=[5], threshold=0.5)
        assert result.missed_days == (5,)


class TestThresholdSweep:
    def test_recall_monotone_nonincreasing_in_threshold(self):
        sweep = threshold_sweep(SCORES, anomaly_days=[21, 28])
        recalls = [point.recall for point in sweep]
        assert all(a >= b for a, b in zip(recalls, recalls[1:]))

    def test_zero_threshold_detects_everything(self):
        sweep = threshold_sweep(SCORES, anomaly_days=[21, 28], thresholds=[0.0])
        assert sweep[0].recall == 1.0

    def test_custom_grid(self):
        sweep = threshold_sweep(SCORES, anomaly_days=[21], thresholds=[0.2, 0.9])
        assert len(sweep) == 2
        assert sweep[0].threshold == 0.2


class TestMergeIntervals:
    def test_merges_overlapping_and_touching(self):
        assert merge_intervals([(10, 20), (15, 25), (25, 30)]) == [(10, 30)]

    def test_gap_folds_near_intervals(self):
        assert merge_intervals([(0, 5), (8, 10)], gap=3) == [(0, 10)]
        assert merge_intervals([(0, 5), (9, 10)], gap=3) == [(0, 5), (9, 10)]

    def test_sorts_input(self):
        assert merge_intervals([(20, 30), (0, 5)]) == [(0, 5), (20, 30)]

    def test_rejects_empty_and_inverted(self):
        with pytest.raises(ValueError, match="empty or inverted"):
            merge_intervals([(5, 5)])
        with pytest.raises(ValueError, match="empty or inverted"):
            merge_intervals([(7, 3)])

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError, match="gap"):
            merge_intervals([(0, 1)], gap=-1)


class TestIntervalsFromScores:
    def test_window_grid_mapping(self):
        # Windows at 0, 5, 10, ... each spanning 8 samples.
        scores = [0.0, 0.9, 0.9, 0.0, 0.0, 0.9]
        got = intervals_from_scores(scores, 0.5, stride=5, span=8)
        assert got == [(5, 18), (25, 33)]

    def test_start_offsets_the_grid(self):
        got = intervals_from_scores([1.0], 0.5, start=100, stride=5, span=8)
        assert got == [(100, 108)]

    def test_merge_gap_bridges_one_quiet_window(self):
        scores = [0.9, 0.0, 0.9]
        split = intervals_from_scores(scores, 0.5, stride=10, span=4)
        # The quiet middle window leaves a 16-sample gap ([4, 20)).
        bridged = intervals_from_scores(scores, 0.5, stride=10, span=4, merge_gap=16)
        assert split == [(0, 4), (20, 24)]
        assert bridged == [(0, 24)]

    def test_threshold_is_inclusive(self):
        assert intervals_from_scores([0.5], 0.5) == [(0, 1)]
        assert intervals_from_scores([0.4999], 0.5) == []

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError, match="positive"):
            intervals_from_scores([1.0], 0.5, stride=0)
        with pytest.raises(ValueError, match="positive"):
            intervals_from_scores([1.0], 0.5, span=0)

    def test_accepts_ndarray_scores(self):
        got = intervals_from_scores(np.array([0.1, 0.9]), 0.5, stride=3, span=3)
        assert got == [(3, 6)]


class TestEvaluateEvents:
    def test_partial_overlap_counts_as_detected(self):
        # Episode [90, 110) clips only the head of the event [100, 200).
        result = evaluate_events(predicted=[(90, 110)], truth=[(100, 200)])
        assert result.detected_events == ((100, 200),)
        assert result.false_episodes == ()
        assert result.recall == 1.0
        assert result.precision == 1.0

    def test_one_episode_may_cover_many_events(self):
        result = evaluate_events(
            predicted=[(0, 100)], truth=[(10, 20), (40, 50), (80, 90)]
        )
        assert result.recall == 1.0
        assert result.precision == 1.0
        assert len(result.predicted_episodes) == 1

    def test_several_episodes_on_one_event_not_double_counted(self):
        result = evaluate_events(
            predicted=[(10, 15), (18, 25)], truth=[(12, 22)]
        )
        assert result.recall == 1.0
        # Both episodes matched, but only one true event was detected.
        assert len(result.detected_events) == 1
        assert len(result.matched_episodes) == 2

    def test_false_alarms_and_misses(self):
        result = evaluate_events(
            predicted=[(0, 5), (50, 60)], truth=[(52, 55), (90, 95)]
        )
        assert result.false_episodes == ((0, 5),)
        assert result.missed_events == ((90, 95),)
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(0.5)
        assert 0 < result.f1 < 1

    def test_touching_intervals_do_not_overlap(self):
        # Half-open: [0, 10) and [10, 20) share no sample.
        result = evaluate_events(predicted=[(0, 10)], truth=[(10, 20)])
        assert result.recall == 0.0
        assert result.false_episodes == ((0, 10),)

    def test_no_truth_is_vacuous_recall(self):
        quiet = evaluate_events(predicted=[], truth=[])
        assert quiet.recall == 1.0 and quiet.precision == 1.0 and quiet.f1 == 1.0
        noisy = evaluate_events(predicted=[(0, 5)], truth=[])
        assert noisy.recall == 1.0
        assert noisy.precision == 0.0

    def test_no_predictions_is_vacuous_precision(self):
        silent = evaluate_events(predicted=[], truth=[(0, 5)])
        assert silent.precision == 1.0
        assert silent.recall == 0.0
        assert silent.f1 == 0.0

    def test_rejects_degenerate_intervals(self):
        with pytest.raises(ValueError, match="predicted"):
            evaluate_events(predicted=[(5, 5)], truth=[(0, 10)])
        with pytest.raises(ValueError, match="truth"):
            evaluate_events(predicted=[(0, 10)], truth=[(9, 3)])

    def test_to_dict_round_trip(self):
        result = evaluate_events(predicted=[(0, 5)], truth=[(3, 8), (20, 30)])
        payload = result.to_dict()
        assert payload["true_events"] == 2
        assert payload["detected_events"] == 1
        assert payload["missed_events"] == 1
        assert payload["false_episodes"] == 0
        assert payload["precision"] == pytest.approx(1.0)
        assert payload["recall"] == pytest.approx(0.5)
