"""Tests for day-level detection evaluation."""

from __future__ import annotations

import pytest

from repro.detection import evaluate_days, threshold_sweep


SCORES = {
    14: 0.1, 15: 0.1, 16: 0.1, 17: 0.1, 18: 0.2,
    19: 0.6, 20: 0.7,      # early warnings before day 21
    21: 0.8,               # anomaly, detected
    22: 0.1, 23: 0.1, 24: 0.6,   # isolated false alarm
    25: 0.1, 26: 0.1, 27: 0.55,  # early warning before 28
    28: 0.3,               # anomaly, missed at threshold 0.5
    29: 0.1, 30: 0.1,
}


class TestEvaluateDays:
    def test_classification_of_each_day(self):
        result = evaluate_days(SCORES, anomaly_days=[21, 28], threshold=0.5)
        assert result.detected_days == (21,)
        assert result.missed_days == (28,)
        assert result.early_warning_days == (19, 20, 27)
        assert result.false_alarm_days == (24,)

    def test_metrics(self):
        result = evaluate_days(SCORES, anomaly_days=[21, 28], threshold=0.5)
        assert result.recall == pytest.approx(0.5)
        # 4 useful alarms (1 detection + 3 early warnings) of 5 total.
        assert result.precision == pytest.approx(4 / 5)
        assert 0 < result.f1 < 1

    def test_early_window_zero_disables_credit(self):
        result = evaluate_days(
            SCORES, anomaly_days=[21, 28], threshold=0.5, early_warning_window=0
        )
        assert result.early_warning_days == ()
        assert set(result.false_alarm_days) == {19, 20, 24, 27}

    def test_no_anomalies(self):
        result = evaluate_days({1: 0.9}, anomaly_days=[], threshold=0.5)
        assert result.recall == 0.0
        assert result.false_alarm_days == (1,)

    def test_missing_day_score_counts_as_missed(self):
        result = evaluate_days({1: 0.1}, anomaly_days=[5], threshold=0.5)
        assert result.missed_days == (5,)


class TestThresholdSweep:
    def test_recall_monotone_nonincreasing_in_threshold(self):
        sweep = threshold_sweep(SCORES, anomaly_days=[21, 28])
        recalls = [point.recall for point in sweep]
        assert all(a >= b for a, b in zip(recalls, recalls[1:]))

    def test_zero_threshold_detects_everything(self):
        sweep = threshold_sweep(SCORES, anomaly_days=[21, 28], thresholds=[0.0])
        assert sweep[0].recall == 1.0

    def test_custom_grid(self):
        sweep = threshold_sweep(SCORES, anomaly_days=[21], thresholds=[0.2, 0.9])
        assert len(sweep) == 2
        assert sweep[0].threshold == 0.2
