"""Tests for the plant case-study orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy


@pytest.fixture(scope="module")
def case_study(plant_dataset):
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    return PlantCaseStudy(dataset=plant_dataset, config=config).fit()


@pytest.fixture(scope="module")
def detection(case_study):
    return case_study.detect()


class TestPlantCaseStudy:
    def test_unfitted_detect_raises(self, plant_dataset):
        study = PlantCaseStudy(dataset=plant_dataset, config=FrameworkConfig())
        with pytest.raises(RuntimeError):
            study.detect()

    def test_first_test_day(self, case_study):
        assert case_study.first_test_day == 14

    def test_window_day_monotone_and_in_range(self, case_study, detection):
        days = [case_study.window_day(w) for w in range(detection.num_windows)]
        assert days == sorted(days)
        assert days[0] == 14
        assert days[-1] <= case_study.dataset.config.days

    def test_day_scores_cover_all_test_days(self, case_study, detection):
        scores = case_study.day_scores(detection)
        assert [s.day for s in scores] == list(range(14, 31))
        for score in scores:
            assert 0.0 <= score.mean_score <= score.max_score <= 1.0

    def test_day_flags(self, case_study, detection):
        scores = {s.day: s for s in case_study.day_scores(detection)}
        assert scores[21].is_anomaly and scores[28].is_anomaly
        assert scores[19].is_precursor and not scores[19].is_anomaly
        assert not scores[15].is_anomaly and not scores[15].is_precursor

    def test_detection_quality_finds_both_anomalies(self, case_study, detection):
        quality = case_study.detection_quality(detection)
        assert set(quality["detected_days"]) == {21, 28}
        assert quality["missed_days"] == []
        assert quality["anomaly_peak"] > quality["normal_peak"]

    def test_calibrated_threshold_detects_anomalies(self, case_study, detection):
        """The dev-calibrated alarm threshold sits between normal noise
        and the anomaly peaks."""
        threshold = case_study.calibrated_alarm_threshold()
        assert 0.0 < threshold < 1.0
        evaluation = case_study.evaluate(detection, alarm_threshold=threshold)
        assert evaluation.recall == 1.0
