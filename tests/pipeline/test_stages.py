"""Tests for the stage-graph pipeline and incremental pair rebuilds.

The headline acceptance criteria of the stage-graph refactor: a refit
with unchanged logs and config trains zero pairs, and perturbing one
sensor's events retrains exactly the ``2(N-1)`` pairs that involve it.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.graph import MultivariateRelationshipGraph
from repro.lang import MultivariateEventLog
from repro.pipeline import ArtifactStore, PairCheckpointStore
from repro.pipeline.artifacts import PickleJournal
from repro.pipeline.stages import (
    CorpusStage,
    EncryptStage,
    Stage,
    StageContext,
    StageGraph,
    spec_fingerprint,
)
from repro.translation.ngram import NGramTranslator

from .test_executor import build_graph


class CachedCountingFactory:
    """Counting factory that opts into artifact caching via cache_token."""

    cache_token = "ngram-default"

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> NGramTranslator:
        with self._lock:
            self.calls += 1
        return NGramTranslator()


def perturb_sensor(log: MultivariateEventLog, sensor: str) -> MultivariateEventLog:
    """Flip one event in one sensor, leaving every other sensor intact."""
    events = {seq.sensor: list(seq.events) for seq in log}
    events[sensor][0] = events[sensor][0] + "_PERTURBED"
    return MultivariateEventLog.from_mapping(events)


class TestIncrementalRebuild:
    def test_unchanged_refit_trains_zero_pairs(
        self, executor_log, executor_language_config, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        first_factory = CachedCountingFactory()
        first = build_graph(
            executor_log,
            executor_language_config,
            model_factory=first_factory,
            store=store,
        )
        n = len(first.sensors)
        assert first_factory.calls == n * (n - 1)
        assert not first.build_report.cached

        second_factory = CachedCountingFactory()
        second = build_graph(
            executor_log,
            executor_language_config,
            model_factory=second_factory,
            store=store,
        )
        assert second_factory.calls == 0
        assert sorted(second.build_report.cached) == sorted(first.relationships)
        assert not second.build_report.completed

    def test_perturbing_one_sensor_retrains_2n_minus_2_pairs(
        self, executor_log, executor_language_config, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        build_graph(
            executor_log,
            executor_language_config,
            model_factory=CachedCountingFactory(),
            store=store,
        )
        perturbed = perturb_sensor(executor_log, "sC")
        factory = CachedCountingFactory()
        graph = build_graph(
            perturbed, executor_language_config, model_factory=factory, store=store
        )
        n = len(graph.sensors)
        assert factory.calls == 2 * (n - 1)
        retrained = set(graph.build_report.completed)
        assert retrained == {pair for pair in graph.relationships if "sC" in pair}

    def test_cached_build_bit_identical_to_fresh(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB", "sC"])
        store = ArtifactStore(tmp_path / "cache")
        kwargs = dict(engine="ngram", store=store)
        first = build_graph(log, executor_language_config, **kwargs)
        cached = build_graph(log, executor_language_config, **kwargs)
        fresh = build_graph(log, executor_language_config, engine="ngram")
        assert pickle.dumps(cached.scores()) == pickle.dumps(fresh.scores())
        assert pickle.dumps(cached.scores()) == pickle.dumps(first.scores())
        assert list(cached.relationships) == list(fresh.relationships)
        for pair in fresh.relationships:
            np.testing.assert_array_equal(
                cached[pair].dev_sentence_scores, fresh[pair].dev_sentence_scores
            )

    def test_cached_build_streams_progress_for_every_pair(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB", "sC"])
        store = ArtifactStore(tmp_path / "cache")
        build_graph(log, executor_language_config, store=store)
        seen: list[tuple[str, str, float]] = []
        graph = build_graph(
            log,
            executor_language_config,
            store=store,
            progress=lambda s, t, score: seen.append((s, t, score)),
        )
        assert {(s, t) for s, t, _ in seen} == set(graph.relationships)
        assert all(score == graph.score(s, t) for s, t, score in seen)

    def test_store_accepts_bare_path(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB"])
        build_graph(
            log,
            executor_language_config,
            model_factory=CachedCountingFactory(),
            store=tmp_path / "cache",
        )
        factory = CachedCountingFactory()
        build_graph(
            log, executor_language_config, model_factory=factory, store=tmp_path / "cache"
        )
        assert factory.calls == 0

    def test_opaque_factory_is_never_cached(
        self, executor_log, executor_language_config, tmp_path
    ):
        from .test_executor import CountingFactory

        log = executor_log.select(["sA", "sB"])
        store = ArtifactStore(tmp_path / "cache")
        build_graph(
            log, executor_language_config, model_factory=CountingFactory(), store=store
        )
        factory = CountingFactory()
        graph = build_graph(
            log, executor_language_config, model_factory=factory, store=store
        )
        assert factory.calls == 2
        assert not graph.build_report.cached

    def test_config_change_invalidates_every_pair(
        self, executor_log, executor_language_config, tmp_path
    ):
        from repro.lang import LanguageConfig

        log = executor_log.select(["sA", "sB", "sC"])
        store = ArtifactStore(tmp_path / "cache")
        build_graph(
            log, executor_language_config, model_factory=CachedCountingFactory(), store=store
        )
        other_config = LanguageConfig(
            word_size=3, word_stride=1, sentence_length=5, sentence_stride=5
        )
        factory = CachedCountingFactory()
        graph = build_graph(log, other_config, model_factory=factory, store=store)
        n = len(graph.sensors)
        assert factory.calls == n * (n - 1)

    def test_build_report_to_dict_counts(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB", "sC"])
        store = ArtifactStore(tmp_path / "cache")
        build_graph(log, executor_language_config, store=store)
        graph = build_graph(log, executor_language_config, store=store)
        payload = graph.build_report.to_dict()
        assert payload["trained"] == 0
        assert payload["cached"] == 6
        assert payload["skipped"] == 0
        assert sorted(tuple(p) for p in payload["cached_pairs"]) == sorted(
            graph.relationships
        )


class TestSpecFingerprint:
    def test_engine_specs_cacheable(self):
        assert spec_fingerprint(("engine", "ngram", None)) is not None
        assert spec_fingerprint(("engine", "ngram", None)) != spec_fingerprint(
            ("engine", "seq2seq", None)
        )

    def test_factory_requires_cache_token(self):
        assert spec_fingerprint(("factory", CachedCountingFactory())) is not None
        assert spec_fingerprint(("factory", lambda: NGramTranslator())) is None


class TestJournalAdapterCompatibility:
    """PR 1 checkpoint journals stay readable through the new substrate."""

    def test_pr1_format_journal_round_trips(self, tmp_path):
        from .test_persistence import make_relationship

        # Write a journal with the raw PR 1 on-disk layout: a header
        # record followed by one record per completed pair.
        path = tmp_path / "pairs.ckpt"
        rel = make_relationship("sA", "sB", 77.0)
        with path.open("wb") as handle:
            pickle.dump({"format": "repro-pair-checkpoint-v1"}, handle)
            pickle.dump({"pair": ("sA", "sB"), "relationship": rel}, handle)

        store = PairCheckpointStore(path)
        loaded = store.load()
        assert list(loaded) == [("sA", "sB")]
        assert loaded[("sA", "sB")].score == 77.0

        # And the adapter writes the same layout back.
        store.append(make_relationship("sB", "sA", 55.0))
        records = list(
            PickleJournal(path, "repro-pair-checkpoint-v1").records()
        )
        assert [tuple(r["pair"]) for r in records] == [("sA", "sB"), ("sB", "sA")]

    def test_checkpoint_and_cache_compose(
        self, executor_log, executor_language_config, tmp_path
    ):
        """A stale journal never poisons the store and vice versa."""
        log = executor_log.select(["sA", "sB", "sC"])
        store = ArtifactStore(tmp_path / "cache")
        journal = PairCheckpointStore(tmp_path / "pairs.ckpt")
        first = build_graph(
            log, executor_language_config, store=store, checkpoint=journal
        )
        # Resumed pairs come from the journal, cached pairs from the
        # store; a fully cached rebuild reads nothing from the journal.
        graph = build_graph(
            log, executor_language_config, store=store, checkpoint=journal
        )
        assert sorted(graph.build_report.cached) == sorted(first.relationships)
        assert not graph.build_report.resumed
        assert pickle.dumps(graph.scores()) == pickle.dumps(first.scores())


class TestStageGraphValidation:
    class Producer(Stage):
        name = "producer"
        inputs = ("seed",)
        outputs = ("value",)

        def compute(self, context):
            return {"value": context["seed"] + 1}

    class Consumer(Stage):
        name = "consumer"
        inputs = ("value",)
        outputs = ("result",)

        def compute(self, context):
            return {"result": context["value"] * 2}

    def test_runs_in_order(self):
        graph = StageGraph([self.Producer(), self.Consumer()], seeds=("seed",))
        context = graph.run(StageContext({"seed": 1}))
        assert context["result"] == 4
        assert [r.stage for r in context.results] == ["producer", "consumer"]

    def test_unsatisfied_input_rejected_at_construction(self):
        with pytest.raises(ValueError, match="consumes"):
            StageGraph([self.Consumer()], seeds=("seed",))

    def test_duplicate_stage_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage name"):
            StageGraph([self.Producer(), self.Producer()], seeds=("seed",))

    def test_duplicate_output_producer_rejected(self):
        class Rival(self.Producer):
            name = "rival"

        with pytest.raises(ValueError, match="produced by both"):
            StageGraph([self.Producer(), Rival()], seeds=("seed",))

    def test_missing_seed_value_rejected_at_run(self):
        graph = StageGraph([self.Producer()], seeds=("seed",))
        with pytest.raises(KeyError, match="seed values"):
            graph.run(StageContext({}))

    def test_declared_outputs_enforced(self):
        class Liar(Stage):
            name = "liar"
            outputs = ("promised",)

            def compute(self, context):
                return {"delivered": 1}

        with pytest.raises(RuntimeError, match="declares outputs"):
            Liar().run(StageContext({}))

    def test_missing_input_raises_at_run(self):
        with pytest.raises(KeyError, match="missing inputs"):
            self.Producer().run(StageContext({}))


class TestWholeStageCaching:
    def test_encrypt_and_corpus_stages_cache_hit_on_rerun(
        self, executor_log, executor_language_config, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        log = executor_log.select(["sA", "sB"])
        seeds = {
            "training_log": log.slice(0, 360),
            "development_log": log.slice(360, 480),
            "language_config": executor_language_config,
        }

        def run_once():
            context = StageContext(dict(seeds), store=store)
            StageGraph(
                [EncryptStage(), CorpusStage()], seeds=tuple(seeds)
            ).run(context)
            return context

        first = run_once()
        second = run_once()
        assert [r.cache_hit for r in first.results] == [False, False]
        assert [r.cache_hit for r in second.results] == [True, True]
        assert (
            second["corpus"].sensors == first["corpus"].sensors
        )
        assert second["corpus"]["sA"].sentences == first["corpus"]["sA"].sentences

    def test_corrupt_whole_stage_artifact_recomputed(
        self, executor_log, executor_language_config, tmp_path
    ):
        store = ArtifactStore(tmp_path / "cache")
        log = executor_log.select(["sA", "sB"])
        seeds = {"training_log": log.slice(0, 360)}
        stage = EncryptStage()
        context = StageContext(dict(seeds), store=store)
        result = stage.run(context)
        store.path_for(result.key).write_bytes(b"garbage")
        rerun = stage.run(StageContext(dict(seeds), store=store))
        assert not rerun.cache_hit

    def test_serial_parallel_and_cached_builds_identical(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB", "sC"])
        serial = build_graph(log, executor_language_config, n_jobs=1)
        store = ArtifactStore(tmp_path / "cache")
        parallel = build_graph(
            log, executor_language_config, n_jobs=4, backend="thread", store=store
        )
        cached = build_graph(log, executor_language_config, n_jobs=1, store=store)
        assert pickle.dumps(serial.scores()) == pickle.dumps(parallel.scores())
        assert pickle.dumps(serial.scores()) == pickle.dumps(cached.scores())


class TestGraphAssembly:
    def test_build_through_stage_graph_matches_direct_api(
        self, executor_log, executor_language_config
    ):
        log = executor_log.select(["sA", "sB"])
        graph = build_graph(log, executor_language_config)
        assert isinstance(graph, MultivariateRelationshipGraph)
        assert graph.build_report is not None
        assert sorted(graph.relationships) == [("sA", "sB"), ("sB", "sA")]
