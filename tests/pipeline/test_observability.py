"""Integration tests: metrics flow through the pipeline layers.

One registry owned by the framework must end up holding stage timings,
artifact-store hit/miss counts, pair-training counters (merged out of
the executor) and detection gauges — and a warm-cache rebuild must
prove itself via ``pair_train.trained == 0`` in the snapshot.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph import MultivariateRelationshipGraph, ScoreRange
from repro.lang import LanguageConfig
from repro.obs import SNAPSHOT_SCHEMA, MetricsRegistry
from repro.pipeline import AnalyticsFramework, FrameworkConfig, PairExecutor
from repro.pipeline.persistence import load_framework, save_framework
from repro.translation.ngram import NGramTranslator

FULL_RANGE = ScoreRange(0, 100, inclusive_high=True)


def make_framework(cache_dir=None):
    return AnalyticsFramework(
        FrameworkConfig(
            language=LanguageConfig(
                word_size=4, word_stride=1, sentence_length=5, sentence_stride=5
            ),
            detection_range=FULL_RANGE,
            popular_threshold=10,
            cache_dir=cache_dir,
        )
    )


@pytest.fixture(scope="module")
def small_log(executor_log):
    return executor_log.select(["sA", "sB", "sC"])


class TestFitMetrics:
    def test_fit_records_stage_executor_and_store_metrics(self, small_log, tmp_path):
        framework = make_framework(cache_dir=tmp_path / "cache")
        framework.fit(small_log.slice(0, 360), small_log.slice(360, 480))
        snapshot = framework.metrics.snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        metrics = snapshot["metrics"]

        for stage in ("encrypt", "corpus", "pair-train", "graph-assemble"):
            assert metrics[f"stage.{stage}.runs"]["value"] == 1
            assert metrics[f"stage.{stage}.seconds"]["count"] == 1

        trained = len(framework.build_report.completed)
        assert trained == 6
        assert metrics["pair_train.trained"]["value"] == trained
        assert metrics["pair_train.cached"]["value"] == 0
        assert metrics["pair_train.retries"]["value"] == 0
        assert metrics["pair_train.skipped"]["value"] == 0
        assert metrics["pair_train.train_seconds"]["count"] == trained
        assert metrics["pair_train.eval_seconds"]["count"] == trained
        assert metrics["pair_train.wall_seconds"]["count"] == 1

        # Cold cache: every pair lookup missed, every artifact written.
        assert metrics["store.misses"]["value"] >= trained
        assert metrics["store.writes"]["value"] >= trained

    def test_warm_rebuild_trains_zero_pairs(self, small_log, tmp_path):
        cache = tmp_path / "cache"
        make_framework(cache_dir=cache).fit(
            small_log.slice(0, 360), small_log.slice(360, 480)
        )

        warm = make_framework(cache_dir=cache)
        warm.fit(small_log.slice(0, 360), small_log.slice(360, 480))
        metrics = warm.metrics.snapshot()["metrics"]
        # The acceptance check: the warm snapshot *contains* the counter
        # and it reads zero — caching proves itself in the metrics.
        assert metrics["pair_train.trained"]["value"] == 0
        assert metrics["pair_train.cached"]["value"] == 6
        assert metrics["store.hits"]["value"] >= 6
        assert len(warm.build_report.cached) == 6

    def test_build_accepts_caller_registry(self, small_log):
        registry = MetricsRegistry()
        MultivariateRelationshipGraph.build(
            small_log.slice(0, 360),
            small_log.slice(360, 480),
            config=LanguageConfig(
                word_size=4, word_stride=1, sentence_length=5, sentence_stride=5
            ),
            metrics=registry,
        )
        assert registry.value("pair_train.trained") == 6
        assert registry.value("stage.corpus.runs") == 1


class TestDetectMetrics:
    def test_detect_records_into_framework_registry(self, small_log):
        framework = make_framework()
        framework.fit(small_log.slice(0, 360), small_log.slice(360, 480))
        result = framework.detect(small_log.slice(240, 480))
        metrics = framework.metrics.snapshot()["metrics"]

        assert metrics["detect.runs"]["value"] == 1
        assert metrics["detect.windows_scored"]["value"] == result.num_windows
        assert metrics["detect.pairs_evaluated"]["value"] == result.num_valid_pairs
        assert metrics["detect.pair_windows_broken"]["value"] == int(result.alerts.sum())
        assert metrics["detect.valid_pairs"]["value"] == result.num_valid_pairs
        assert metrics["detect.pair_seconds"]["count"] == result.num_valid_pairs
        assert metrics["detect.seconds"]["count"] == 1
        assert metrics["stage.detect.runs"]["value"] == 1
        assert 0.0 <= metrics["detect.broken_pair_rate"]["value"] <= 1.0
        assert metrics["detect.seconds_per_window"]["value"] > 0.0

    def test_online_detector_records_serving_metrics(self, small_log):
        from repro.detection import OnlineAnomalyDetector

        framework = make_framework()
        framework.fit(small_log.slice(0, 360), small_log.slice(360, 480))
        registry = MetricsRegistry()
        online = OnlineAnomalyDetector(
            framework.graph, FULL_RANGE, metrics=registry
        )
        test = small_log.slice(240, 480)
        pushed = online.window_span + 3 * online.window_stride
        emitted = []
        for t in range(pushed):
            emitted.extend(
                online.push({name: test[name].events[t] for name in test.sensors})
            )

        assert registry.value("online.samples_ingested") == pushed
        assert registry.value("online.windows_scored") == len(emitted)
        assert registry.value("online.pairs_evaluated") == len(emitted) * len(
            online._pairs
        )
        assert registry.value("online.valid_pairs") == len(online._pairs)
        assert registry.histogram("online.window_seconds").count == len(emitted)


class FlakyThenOk:
    """Model factory whose models fail their first fit per pair."""

    def __init__(self) -> None:
        self.failed: set[tuple[str, str]] = set()
        self._lock = threading.Lock()

    def __call__(self):
        factory = self

        class _Model(NGramTranslator):
            def fit(self, corpus):
                pair = (corpus.source_sensor, corpus.target_sensor)
                with factory._lock:
                    first_attempt = pair not in factory.failed
                    factory.failed.add(pair)
                if first_attempt:
                    raise RuntimeError("transient failure")
                return super().fit(corpus)

        return _Model()


class AlwaysFailsFor:
    """Factory whose models refuse to fit pairs from one source sensor."""

    def __init__(self, source: str) -> None:
        self.source = source

    def __call__(self):
        doomed = self.source

        class _Model(NGramTranslator):
            def fit(self, corpus):
                if corpus.source_sensor == doomed:
                    raise RuntimeError("permanently broken")
                return super().fit(corpus)

        return _Model()


class TestExecutorFailureMetrics:
    def test_retries_counted_and_merged(self, small_log):
        registry = MetricsRegistry()
        graph = MultivariateRelationshipGraph.build(
            small_log.slice(0, 360),
            small_log.slice(360, 480),
            config=LanguageConfig(
                word_size=4, word_stride=1, sentence_length=5, sentence_stride=5
            ),
            model_factory=FlakyThenOk(),
            retries=1,
            metrics=registry,
        )
        assert graph.build_report.ok
        assert registry.value("pair_train.retries") == 6
        assert registry.value("pair_train.trained") == 6
        assert registry.value("pair_train.skipped") == 0

    def test_skips_counted_and_merged(self, small_log):
        registry = MetricsRegistry()
        graph = MultivariateRelationshipGraph.build(
            small_log.slice(0, 360),
            small_log.slice(360, 480),
            config=LanguageConfig(
                word_size=4, word_stride=1, sentence_length=5, sentence_stride=5
            ),
            model_factory=AlwaysFailsFor("sA"),
            retries=1,
            metrics=registry,
        )
        assert len(graph.build_report.skipped) == 2  # sA->sB, sA->sC
        assert registry.value("pair_train.skipped") == 2
        assert registry.value("pair_train.retries") == 2
        assert registry.value("pair_train.trained") == 4

    def test_executor_without_registry_still_runs(self):
        executor = PairExecutor()
        results, report = executor.run([], ("engine", "ngram", None))
        assert results == {} and report.ok


class TestPersistenceCompat:
    def test_saved_framework_round_trips_with_metrics(self, small_log, tmp_path):
        framework = make_framework()
        framework.fit(small_log.slice(0, 360), small_log.slice(360, 480))
        path = save_framework(framework, tmp_path / "model.pkl")

        restored = load_framework(path)
        result = restored.detect(small_log.slice(240, 480))
        assert restored.metrics.value("detect.runs") == 1
        assert result.num_windows > 0

    def test_pre_observability_pickles_get_lazy_registry(self, small_log):
        framework = make_framework()
        framework.fit(small_log.slice(0, 360), small_log.slice(360, 480))
        # Simulate a framework saved before this PR: no registry attribute.
        framework.__dict__.pop("_metrics", None)
        registry = framework.metrics
        assert isinstance(registry, MetricsRegistry)
        assert framework.metrics is registry
