"""Tests for markdown report generation."""

from __future__ import annotations

import pytest

from repro.pipeline import AnalyticsFramework, generate_report, write_report


class TestGenerateReport:
    def test_unfitted_framework_rejected(self):
        with pytest.raises(ValueError):
            generate_report(AnalyticsFramework())

    def test_report_sections_present(self, fitted_plant_framework):
        report = generate_report(fitted_plant_framework)
        for heading in (
            "# Relationship-graph report",
            "## Graph summary",
            "## Global subgraph statistics (Table I)",
            "## Popular sensors",
            "## Local-subgraph clusters",
            "## Strongest relationships",
        ):
            assert heading in report

    def test_detection_section(self, fitted_plant_framework, plant_detection):
        report = generate_report(fitted_plant_framework, plant_detection)
        assert "## Detection run" in report
        assert "Peak window" in report

    def test_markdown_tables_well_formed(self, fitted_plant_framework):
        report = generate_report(fitted_plant_framework)
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        assert table_lines
        # Separator rows follow every header row.
        for line, following in zip(table_lines, table_lines[1:]):
            if set(following.replace("|", "").strip()) <= {"-", " "}:
                assert line.count("|") == following.count("|")

    def test_custom_title(self, fitted_plant_framework):
        report = generate_report(fitted_plant_framework, title="Plant X")
        assert report.startswith("# Plant X")

    def test_write_report(self, fitted_plant_framework, tmp_path):
        path = write_report(fitted_plant_framework, tmp_path / "r" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# ")
