"""Tests for the per-drive (non-pooled) HDD training mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BackblazeConfig, generate_backblaze_dataset
from repro.pipeline import HDDCaseStudy


@pytest.fixture(scope="module")
def dataset():
    return generate_backblaze_dataset(BackblazeConfig(num_drives=6, days=200, seed=17))


@pytest.fixture(scope="module")
def per_drive_study(dataset):
    return HDDCaseStudy(dataset=dataset, pooled=False).fit()


class TestPerDriveMode:
    def test_one_framework_per_drive(self, per_drive_study, dataset):
        eligible = {d.serial for d in per_drive_study.eligible_drives()}
        assert set(per_drive_study._per_drive) == eligible
        assert per_drive_study.framework is None

    def test_trajectories_cover_all_drives(self, per_drive_study):
        trajectories = per_drive_study.trajectories()
        eligible = {d.serial for d in per_drive_study.eligible_drives()}
        assert set(trajectories) == eligible
        for scores in trajectories.values():
            assert (scores >= 0).all() and (scores <= 1).all()

    def test_evaluation_runs(self, per_drive_study):
        evaluation = per_drive_study.evaluate()
        assert 0.0 <= evaluation.recall <= 1.0

    def test_unknown_drive_framework_rejected(self, per_drive_study):
        with pytest.raises(KeyError):
            per_drive_study._framework_for("NOPE")

    def test_unfitted_per_drive_raises(self, dataset):
        study = HDDCaseStudy(dataset=dataset, pooled=False)
        with pytest.raises(RuntimeError):
            study.trajectories()
