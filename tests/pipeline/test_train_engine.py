"""Pipeline wiring of the batched pair-training engine.

Covers the ``batched`` executor backend, the ``train_engine`` /
``train_cohort_size`` configuration knobs, cache sharing between the
looped and batched engines, metric emission and graceful fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.obs import MetricsRegistry
from repro.pipeline import AnalyticsFramework, FrameworkConfig, PairExecutor
from repro.translation.seq2seq import NMTConfig

LANG = LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5)


def _nmt(**overrides) -> NMTConfig:
    base = NMTConfig.small(seed=0)
    values = {**base.__dict__, "training_steps": 10, "hidden_size": 10, "embedding_size": 8}
    values.update(overrides)
    return NMTConfig(**values)


@pytest.fixture(scope="module")
def logs():
    rng = np.random.default_rng(5)
    total = 480
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    log = MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})
    return log.slice(0, 300), log.slice(300, 480)


def _build(logs, **kwargs):
    train, dev = logs
    return MultivariateRelationshipGraph.build(
        train, dev, config=LANG, engine="seq2seq", nmt_config=_nmt(), **kwargs
    )


class TestBatchedBuild:
    def test_same_graph_as_looped(self, logs):
        looped = _build(logs)
        metrics = MetricsRegistry()
        batched = _build(logs, train_engine="batched", cohort_size=4, metrics=metrics)

        assert set(looped.relationships) == set(batched.relationships)
        for pair, relationship in looped.relationships.items():
            other = batched.relationships[pair]
            # Cohorts are grouped by corpus shape *and* vocabulary
            # widths, so pipeline builds are bit-identical to looped.
            assert relationship.score == other.score
            np.testing.assert_array_equal(
                relationship.dev_sentence_scores, other.dev_sentence_scores
            )
        report = batched.build_report
        assert report.backend == "batched"
        assert report.cohorts >= 1
        assert len(report.completed) == 6
        assert metrics.value("train.cohorts") == report.cohorts
        assert metrics.value("train.masked_steps") == 0
        assert "cohorts" in report.to_dict()

    def test_cohort_size_one_still_works(self, logs):
        graph = _build(logs, train_engine="batched", cohort_size=1)
        assert graph.build_report.cohorts == 6
        assert len(graph.build_report.completed) == 6

    def test_shares_artifact_cache_with_looped(self, logs, tmp_path):
        # Caching keys ignore the executor, so a batched build can
        # restore everything a looped build trained (and vice versa).
        _build(logs, store=str(tmp_path / "cache"))
        rebuilt = _build(
            logs, store=str(tmp_path / "cache"), train_engine="batched"
        )
        assert len(rebuilt.build_report.cached) == 6
        assert not rebuilt.build_report.completed

    def test_rejects_non_seq2seq_engines(self, logs):
        train, dev = logs
        with pytest.raises(ValueError, match="batched"):
            MultivariateRelationshipGraph.build(
                train, dev, config=LANG, engine="ngram", train_engine="batched"
            )
        with pytest.raises(ValueError, match="train engine"):
            _build(logs, train_engine="vectorised")


class TestExecutorBackend:
    def test_backend_resolution(self):
        executor = PairExecutor(backend="batched")
        assert executor.resolve_backend(("engine", "seq2seq", None)) == "batched"
        # Non-seq2seq specs degrade to looped execution with a warning.
        assert executor.resolve_backend(("engine", "ngram", None)) == "serial"

    def test_rejects_bad_cohort_size(self):
        with pytest.raises(ValueError, match="cohort_size"):
            PairExecutor(backend="batched", cohort_size=0)


class TestFrameworkConfig:
    def test_defaults_to_looped(self):
        assert FrameworkConfig().train_engine == "looped"

    def test_batched_requires_seq2seq(self):
        with pytest.raises(ValueError, match="seq2seq"):
            FrameworkConfig(train_engine="batched")
        config = FrameworkConfig(engine="seq2seq", train_engine="batched")
        assert config.train_cohort_size is None

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="train engine"):
            FrameworkConfig(train_engine="turbo")
        with pytest.raises(ValueError, match="train_cohort_size"):
            FrameworkConfig(
                engine="seq2seq", train_engine="batched", train_cohort_size=0
            )

    def test_framework_fit_uses_batched_engine(self, logs):
        train, dev = logs
        config = FrameworkConfig(
            language=LANG,
            engine="seq2seq",
            nmt=_nmt(),
            train_engine="batched",
            train_cohort_size=4,
        )
        framework = AnalyticsFramework(config).fit(train, dev)
        assert framework.build_report.backend == "batched"
        assert framework.build_report.cohorts >= 1
