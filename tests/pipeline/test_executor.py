"""Determinism, fault-tolerance and resume tests for the pair executor.

The headline correctness requirement of the parallel Algorithm 1 build:
results arrive out of completion order and workers carry their own RNG
state, yet serial and parallel builds must produce identical edge
scores, graphs and anomaly decisions.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.detection import AnomalyDetector
from repro.graph import MultivariateRelationshipGraph, ScoreRange
from repro.pipeline import PairCheckpointStore, PairExecutor
from repro.translation.ngram import NGramTranslator
from repro.translation.seq2seq import NMTConfig

FULL_RANGE = ScoreRange(0, 100, inclusive_high=True)


def build_graph(log, config, **kwargs):
    train = log.slice(0, 360)
    dev = log.slice(360, 480)
    return MultivariateRelationshipGraph.build(train, dev, config=config, **kwargs)


def detect_scores(graph, log):
    detector = AnomalyDetector(graph, FULL_RANGE)
    return detector.detect(log.slice(240, 480)).anomaly_scores


class CountingFactory:
    """Thread-safe factory counting how many models were instantiated."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> NGramTranslator:
        with self._lock:
            self.calls += 1
        return NGramTranslator()


class KillAfter:
    """Factory simulating a killed build: interrupts after ``k`` pairs."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.calls = 0

    def __call__(self) -> NGramTranslator:
        if self.calls >= self.k:
            raise KeyboardInterrupt
        self.calls += 1
        return NGramTranslator()


class TestSerialParallelEquivalence:
    def test_ngram_scores_byte_identical(self, executor_log, executor_language_config):
        serial = build_graph(executor_log, executor_language_config, n_jobs=1)
        parallel = build_graph(
            executor_log, executor_language_config, n_jobs=4, backend="thread"
        )
        assert pickle.dumps(serial.scores()) == pickle.dumps(parallel.scores())
        for pair in serial.relationships:
            np.testing.assert_array_equal(
                serial[pair].dev_sentence_scores, parallel[pair].dev_sentence_scores
            )

    def test_ngram_detection_identical(self, executor_log, executor_language_config):
        serial = build_graph(executor_log, executor_language_config, n_jobs=1)
        parallel = build_graph(
            executor_log, executor_language_config, n_jobs=4, backend="thread"
        )
        np.testing.assert_array_equal(
            detect_scores(serial, executor_log), detect_scores(parallel, executor_log)
        )

    def test_process_backend_matches_serial(self, executor_log, executor_language_config):
        log = executor_log.select(["sA", "sB", "sC"])
        serial = build_graph(log, executor_language_config, n_jobs=1)
        parallel = build_graph(
            log, executor_language_config, n_jobs=2, backend="process"
        )
        assert pickle.dumps(serial.scores()) == pickle.dumps(parallel.scores())

    def test_seq2seq_scores_and_detection_identical(
        self, executor_log, executor_language_config
    ):
        log = executor_log.select(["sA", "sB"])
        nmt = NMTConfig(
            embedding_size=8,
            hidden_size=8,
            num_layers=1,
            dropout=0.0,
            training_steps=10,
            batch_size=4,
            seed=3,
        )
        kwargs = dict(engine="seq2seq", nmt_config=nmt)
        serial = build_graph(log, executor_language_config, n_jobs=1, **kwargs)
        parallel = build_graph(
            log, executor_language_config, n_jobs=4, backend="thread", **kwargs
        )
        assert pickle.dumps(serial.scores()) == pickle.dumps(parallel.scores())
        np.testing.assert_array_equal(
            detect_scores(serial, log), detect_scores(parallel, log)
        )

    def test_progress_streams_every_pair(self, executor_log, executor_language_config):
        seen: list[tuple[str, str, float]] = []
        graph = build_graph(
            executor_log,
            executor_language_config,
            n_jobs=4,
            backend="thread",
            progress=lambda s, t, score: seen.append((s, t, score)),
        )
        assert {(s, t) for s, t, _ in seen} == set(graph.relationships)
        assert all(score == graph.score(s, t) for s, t, score in seen)

    def test_build_report_attached(self, executor_log, executor_language_config):
        graph = build_graph(
            executor_log, executor_language_config, n_jobs=2, backend="thread"
        )
        report = graph.build_report
        assert report.ok
        assert report.n_jobs == 2 and report.backend == "thread"
        assert sorted(report.completed) == sorted(graph.relationships)
        assert not report.resumed and not report.skipped
        assert report.wall_seconds > 0


class TestExecutorConfiguration:
    def test_auto_n_jobs_resolves_to_cpu_count(self):
        import os

        executor = PairExecutor(n_jobs="auto")
        assert executor.n_jobs == (os.cpu_count() or 1)

    @pytest.mark.parametrize("n_jobs", [0, -1, 1.5, "many"])
    def test_bad_n_jobs_rejected(self, n_jobs):
        with pytest.raises(ValueError, match="n_jobs"):
            PairExecutor(n_jobs=n_jobs)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            PairExecutor(backend="fibers")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            PairExecutor(retries=-1)

    def test_auto_backend_selection(self):
        executor = PairExecutor(n_jobs=4)
        assert executor.resolve_backend(("engine", "ngram", None)) == "thread"
        assert executor.resolve_backend(("engine", "seq2seq", None)) == "process"
        assert executor.resolve_backend(("factory", NGramTranslator)) == "thread"
        assert PairExecutor(n_jobs=1).resolve_backend(("engine", "ngram", None)) == "serial"


class TestCheckpointResume:
    def test_interrupted_build_resumes_without_retraining(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB", "sC", "sD"])  # 12 ordered pairs
        store = PairCheckpointStore(tmp_path / "pairs.ckpt")
        killed = KillAfter(k=5)
        with pytest.raises(KeyboardInterrupt):
            build_graph(
                log,
                executor_language_config,
                model_factory=killed,
                n_jobs=1,
                checkpoint=store,
            )
        finished = store.load()
        assert len(finished) == 5

        counting = CountingFactory()
        resumed = build_graph(
            log,
            executor_language_config,
            model_factory=counting,
            n_jobs=4,
            backend="thread",
            checkpoint=store,
        )
        # No completed pair is retrained.
        assert counting.calls == 12 - 5
        assert sorted(resumed.build_report.resumed) == sorted(finished)
        assert len(resumed.build_report.completed) == 12 - 5

        uninterrupted = build_graph(
            log, executor_language_config, model_factory=CountingFactory(), n_jobs=1
        )
        assert pickle.dumps(resumed.scores()) == pickle.dumps(uninterrupted.scores())
        np.testing.assert_array_equal(
            detect_scores(resumed, log), detect_scores(uninterrupted, log)
        )

    def test_completed_checkpoint_skips_all_training(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB", "sC"])
        store = PairCheckpointStore(tmp_path / "pairs.ckpt")
        first = build_graph(log, executor_language_config, n_jobs=1, checkpoint=store)
        counting = CountingFactory()
        second = build_graph(
            log,
            executor_language_config,
            model_factory=counting,
            n_jobs=1,
            checkpoint=store,
        )
        assert counting.calls == 0
        assert pickle.dumps(first.scores()) == pickle.dumps(second.scores())

    def test_checkpoint_path_accepted_directly(
        self, executor_log, executor_language_config, tmp_path
    ):
        log = executor_log.select(["sA", "sB"])
        path = tmp_path / "nested" / "pairs.ckpt"
        graph = build_graph(log, executor_language_config, n_jobs=1, checkpoint=path)
        assert path.exists()
        assert len(PairCheckpointStore(path).load()) == len(graph.relationships)
