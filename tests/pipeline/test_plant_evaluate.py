"""Tests for PlantCaseStudy.evaluate (day-level metrics wiring)."""

from __future__ import annotations

import pytest

from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy


@pytest.fixture(scope="module")
def study_and_result(plant_dataset):
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    study = PlantCaseStudy(dataset=plant_dataset, config=config).fit()
    return study, study.detect()


class TestPlantEvaluate:
    def test_detects_both_anomalies(self, study_and_result):
        study, result = study_and_result
        evaluation = study.evaluate(result, alarm_threshold=0.5)
        assert set(evaluation.detected_days) == set(study.dataset.anomaly_days)
        assert evaluation.recall == 1.0

    def test_precursors_credited_as_early_warnings(self, study_and_result):
        study, result = study_and_result
        evaluation = study.evaluate(result, alarm_threshold=0.3, early_warning_window=2)
        # Any alarm on days 19/20/27 counts as early warning, not FP.
        for day in evaluation.early_warning_days:
            assert day in study.dataset.precursor_days or any(
                0 < a - day <= 2 for a in study.dataset.anomaly_days
            )

    def test_extreme_threshold_misses_everything(self, study_and_result):
        study, result = study_and_result
        evaluation = study.evaluate(result, alarm_threshold=0.999)
        assert evaluation.recall == 0.0
        assert set(evaluation.missed_days) == set(study.dataset.anomaly_days)
