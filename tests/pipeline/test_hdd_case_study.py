"""Tests for the HDD case-study orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BackblazeConfig, generate_backblaze_dataset
from repro.datasets.smart import KEY_FAILURE_ATTRIBUTES, framework_attribute_names
from repro.pipeline import HDDCaseStudy, HDDSplit


@pytest.fixture(scope="module")
def dataset():
    return generate_backblaze_dataset(
        BackblazeConfig(num_drives=12, days=240, seed=11)
    )


@pytest.fixture(scope="module")
def case_study(dataset):
    return HDDCaseStudy(dataset=dataset).fit()


class TestFit:
    def test_framework_uses_16_features(self, case_study):
        sensors = case_study.framework.graph.sensors
        assert set(sensors) <= set(framework_attribute_names())
        # Benign incidents keep every framework feature non-constant.
        assert len(sensors) == 16

    def test_discretizers_fit_per_feature(self, case_study):
        assert set(case_study.discretizers) == set(framework_attribute_names())

    def test_eligible_drives_filters_history(self, dataset):
        study = HDDCaseStudy(dataset=dataset, min_history_days=10_000)
        with pytest.raises(ValueError):
            study.fit()

    def test_unfitted_accessors_raise(self, dataset):
        study = HDDCaseStudy(dataset=dataset)
        with pytest.raises(RuntimeError):
            study.trajectories()

    def test_split_totals(self):
        split = HDDSplit()
        assert split.total_days == 120


class TestDetection:
    def test_trajectories_cover_eligible_drives(self, case_study):
        trajectories = case_study.trajectories()
        eligible = {d.serial for d in case_study.eligible_drives()}
        assert set(trajectories) == eligible
        for scores in trajectories.values():
            assert (scores >= 0).all() and (scores <= 1).all()

    def test_evaluation_recall_bounds(self, case_study):
        evaluation = case_study.evaluate()
        assert 0.0 <= evaluation.recall <= 1.0
        assert 0.0 <= evaluation.false_positive_rate <= 1.0

    def test_ramped_failures_score_higher_than_healthy(self, case_study, dataset):
        """Non-silent failing drives show elevated late-window scores."""
        trajectories = case_study.trajectories()
        silent_count = int(
            len(dataset.failed_serials) * dataset.config.silent_failure_fraction
        )
        # Generator marks the first `silent_count` failed indices silent.
        failed_sorted = sorted(dataset.failed_serials)
        ramped = failed_sorted[silent_count:]
        healthy = [d.serial for d in dataset if not d.failed]
        ramped_peak = np.mean([trajectories[s].max() for s in ramped])
        healthy_peak = np.mean([trajectories[s].max() for s in healthy])
        assert ramped_peak > healthy_peak

    def test_feature_ranking_prefers_key_attributes(self, case_study):
        top5 = {name for name, _, _ in case_study.feature_ranking(top=5)}
        key = {f"smart_{i}" for i in KEY_FAILURE_ATTRIBUTES}
        assert len(top5 & key) >= 3
