"""Tests for the end-to-end AnalyticsFramework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import ScoreRange
from repro.lang import LanguageConfig
from repro.pipeline import AnalyticsFramework, FrameworkConfig


class TestFit:
    def test_unfitted_accessors_raise(self):
        framework = AnalyticsFramework()
        with pytest.raises(RuntimeError):
            framework.global_subgraph()
        with pytest.raises(RuntimeError):
            _ = framework.detector

    def test_fit_builds_graph_over_all_pairs(self, fitted_plant_framework, plant_dataset):
        graph = fitted_plant_framework.graph
        # Constant sensors are filtered before pairing.
        n = len(graph.sensors)
        assert graph.num_edges == n * (n - 1)

    def test_progress_callback(self, plant_dataset):
        train, dev, _ = plant_dataset.split(10, 3)
        small = train.select(train.sensors[:4])
        small_dev = dev.select(dev.sensors[:4])
        calls = []
        config = FrameworkConfig(
            language=LanguageConfig(word_size=6, sentence_length=8),
            popular_threshold=10,
        )
        AnalyticsFramework(config).fit(
            small, small_dev, progress=lambda s, t, score: calls.append((s, t))
        )
        assert len(calls) > 0


class TestKnowledgeDiscovery:
    def test_local_subgraph_has_no_popular_sensors(self, fitted_plant_framework):
        threshold = fitted_plant_framework.config.popular_threshold
        local = fitted_plant_framework.local_subgraph()
        assert all(degree < threshold for _, degree in local.in_degree())

    def test_clusters_components(self, fitted_plant_framework):
        clusters = fitted_plant_framework.clusters()
        local_nodes = set(fitted_plant_framework.local_subgraph().nodes)
        assert set().union(*clusters) == local_nodes if clusters else not local_nodes

    def test_clusters_walktrap(self, fitted_plant_framework):
        clusters = fitted_plant_framework.clusters(method="walktrap")
        for cluster in clusters:
            assert len(cluster) >= 1

    def test_unknown_cluster_method(self, fitted_plant_framework):
        with pytest.raises(ValueError):
            fitted_plant_framework.clusters(method="kmeans")

    def test_clusters_reflect_plant_components(
        self, fitted_plant_framework, plant_dataset
    ):
        """Sensors sharing a component co-cluster more often than not:
        the knowledge-discovery claim of Section III-B."""
        clusters = [
            c for c in fitted_plant_framework.clusters(
                ScoreRange(70, 100, inclusive_high=True)
            )
            if len(c) >= 2
        ]
        if not clusters:
            pytest.skip("no multi-sensor clusters at this scale")
        component_of = plant_dataset.component_of
        same = 0
        total = 0
        for cluster in clusters:
            members = sorted(cluster)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    total += 1
                    same += component_of[a] == component_of[b]
        assert same / total > 0.5


class TestDetectionIntegration:
    def test_detect_with_override_range(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        result = fitted_plant_framework.detect(
            test, ScoreRange(60, 90)
        )
        assert result.num_valid_pairs > 0

    def test_windows_per_sample_count(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        result = fitted_plant_framework.detect(test)
        expected = fitted_plant_framework.windows_per_sample_count(test.num_samples)
        assert result.num_windows == expected

    def test_diagnose_delegates_to_local_subgraph(
        self, fitted_plant_framework, plant_detection
    ):
        diagnosis = fitted_plant_framework.diagnose(plant_detection, 0)
        local_edges = set(fitted_plant_framework.local_subgraph().edges)
        assert set(diagnosis.broken_edges) | set(diagnosis.normal_edges) == local_edges


class TestConfigPresets:
    def test_plant_preset(self):
        config = FrameworkConfig.plant()
        assert config.language.word_size == 10
        assert config.language.sentence_length == 20

    def test_backblaze_preset(self):
        config = FrameworkConfig.backblaze()
        assert config.language.word_size == 5
        assert config.popular_threshold < 100

    def test_invalid_threshold_strategy(self):
        with pytest.raises(ValueError):
            FrameworkConfig(threshold_strategy="nope")
