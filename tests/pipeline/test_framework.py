"""Tests for the end-to-end AnalyticsFramework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    MultivariateRelationshipGraph,
    PairwiseRelationship,
    ScoreRange,
)
from repro.lang import LanguageConfig
from repro.lang.corpus import MultiLanguageCorpus
from repro.pipeline import AnalyticsFramework, FrameworkConfig


def framework_with_scores(scores: dict[tuple[str, str], float]) -> AnalyticsFramework:
    """A framework around a hand-built graph with the given edge scores."""
    relationships = {
        (source, target): PairwiseRelationship(
            source=source,
            target=target,
            model=None,
            score=score,
            dev_sentence_scores=np.asarray([score, score]),
        )
        for (source, target), score in scores.items()
    }
    framework = AnalyticsFramework()
    framework.graph = MultivariateRelationshipGraph(
        MultiLanguageCorpus({}, []), relationships
    )
    return framework


class TestFit:
    def test_unfitted_accessors_raise(self):
        framework = AnalyticsFramework()
        with pytest.raises(RuntimeError):
            framework.global_subgraph()
        with pytest.raises(RuntimeError):
            _ = framework.detector

    def test_fit_builds_graph_over_all_pairs(self, fitted_plant_framework, plant_dataset):
        graph = fitted_plant_framework.graph
        # Constant sensors are filtered before pairing.
        n = len(graph.sensors)
        assert graph.num_edges == n * (n - 1)

    def test_progress_callback(self, plant_dataset):
        train, dev, _ = plant_dataset.split(10, 3)
        small = train.select(train.sensors[:4])
        small_dev = dev.select(dev.sensors[:4])
        calls = []
        config = FrameworkConfig(
            language=LanguageConfig(word_size=6, sentence_length=8),
            popular_threshold=10,
        )
        AnalyticsFramework(config).fit(
            small, small_dev, progress=lambda s, t, score: calls.append((s, t))
        )
        assert len(calls) > 0


class TestKnowledgeDiscovery:
    def test_local_subgraph_has_no_popular_sensors(self, fitted_plant_framework):
        threshold = fitted_plant_framework.config.popular_threshold
        local = fitted_plant_framework.local_subgraph()
        assert all(degree < threshold for _, degree in local.in_degree())

    def test_clusters_components(self, fitted_plant_framework):
        clusters = fitted_plant_framework.clusters()
        local_nodes = set(fitted_plant_framework.local_subgraph().nodes)
        assert set().union(*clusters) == local_nodes if clusters else not local_nodes

    def test_clusters_walktrap(self, fitted_plant_framework):
        clusters = fitted_plant_framework.clusters(method="walktrap")
        for cluster in clusters:
            assert len(cluster) >= 1

    def test_unknown_cluster_method(self, fitted_plant_framework):
        with pytest.raises(ValueError):
            fitted_plant_framework.clusters(method="kmeans")

    def test_walktrap_on_empty_local_subgraph(self):
        # Every edge scores 0.0, so the default detection range [80, 90)
        # yields an empty global (hence local) subgraph.
        framework = framework_with_scores(
            {("a", "b"): 0.0, ("b", "a"): 0.0, ("b", "c"): 0.0}
        )
        assert framework.local_subgraph().number_of_nodes() == 0
        assert framework.clusters(method="walktrap") == []
        assert framework.clusters(method="components") == []

    def test_subgraph_statistics_all_zero_scores(self):
        framework = framework_with_scores(
            {("a", "b"): 0.0, ("b", "a"): 0.0, ("b", "c"): 0.0}
        )
        stats = framework.subgraph_statistics()
        # All three edges land in the [0, 60) row; the rest are empty.
        assert stats[0].relationship_fraction == 1.0
        assert all(row.relationship_fraction == 0.0 for row in stats[1:])
        assert all(row.num_sensors == 0 for row in stats[1:])
        assert all(row.num_popular == 0 for row in stats)

    def test_clusters_reflect_plant_components(
        self, fitted_plant_framework, plant_dataset
    ):
        """Sensors sharing a component co-cluster more often than not:
        the knowledge-discovery claim of Section III-B."""
        clusters = [
            c for c in fitted_plant_framework.clusters(
                ScoreRange(70, 100, inclusive_high=True)
            )
            if len(c) >= 2
        ]
        if not clusters:
            pytest.skip("no multi-sensor clusters at this scale")
        component_of = plant_dataset.component_of
        same = 0
        total = 0
        for cluster in clusters:
            members = sorted(cluster)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    total += 1
                    same += component_of[a] == component_of[b]
        assert same / total > 0.5


class TestDetectionIntegration:
    def test_detect_with_override_range(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        result = fitted_plant_framework.detect(
            test, ScoreRange(60, 90)
        )
        assert result.num_valid_pairs > 0

    def test_windows_per_sample_count(self, fitted_plant_framework, plant_dataset):
        _, _, test = plant_dataset.split(10, 3)
        result = fitted_plant_framework.detect(test)
        expected = fitted_plant_framework.windows_per_sample_count(test.num_samples)
        assert result.num_windows == expected

    def test_diagnose_delegates_to_local_subgraph(
        self, fitted_plant_framework, plant_detection
    ):
        diagnosis = fitted_plant_framework.diagnose(plant_detection, 0)
        local_edges = set(fitted_plant_framework.local_subgraph().edges)
        assert set(diagnosis.broken_edges) | set(diagnosis.normal_edges) == local_edges


class TestDetectionMemoization:
    @pytest.fixture(scope="class")
    def small_framework(self, plant_dataset):
        train, dev, _ = plant_dataset.split(10, 3)
        sensors = train.sensors[:4]
        config = FrameworkConfig(
            language=LanguageConfig(word_size=6, sentence_length=8, sentence_stride=8),
            popular_threshold=10,
        )
        return AnalyticsFramework(config).fit(
            train.select(sensors), dev.select(sensors)
        )

    def test_detector_memoized_per_score_range(self, small_framework, plant_dataset):
        assert small_framework.detector is small_framework.detector
        _, _, test = plant_dataset.split(10, 3)
        test = test.select(small_framework.graph.sensors)
        full = ScoreRange(0, 100, inclusive_high=True)
        small_framework.detect(test, full)
        stage = small_framework._stage()
        detector = stage.detector_for(full)
        small_framework.detect(test, full)
        assert stage.detector_for(full) is detector

    def test_test_corpus_shared_across_ranges(
        self, small_framework, plant_dataset, monkeypatch
    ):
        from repro.lang.corpus import SensorLanguage

        _, _, test = plant_dataset.split(10, 3)
        # A slice no other test uses, so this test starts cache-cold.
        test = test.select(small_framework.graph.sensors)
        test = test.slice(0, test.num_samples - 6)
        encrypted: list[str] = []
        original = SensorLanguage.sentences_for

        def counting(self, sequence):
            encrypted.append(self.sensor)
            return original(self, sequence)

        monkeypatch.setattr(SensorLanguage, "sentences_for", counting)
        full = ScoreRange(0, 100, inclusive_high=True)
        small_framework.detect(test, full)
        assert encrypted  # the first detection encrypts the test log
        seen = len(encrypted)
        # Same log under a different score range: nothing re-encrypts.
        low = min(s for s in small_framework.graph.scores().values() if s > 0)
        narrower = ScoreRange(min(low, 99.0), 100.0, inclusive_high=True)
        small_framework.detect(test, narrower)
        assert len(encrypted) == seen

    def test_changed_test_log_resets_sentence_cache(
        self, small_framework, plant_dataset, monkeypatch
    ):
        from repro.lang.corpus import SensorLanguage

        _, _, test = plant_dataset.split(10, 3)
        test = test.select(small_framework.graph.sensors)
        full = ScoreRange(0, 100, inclusive_high=True)
        small_framework.detect(test, full)
        encrypted: list[str] = []
        original = SensorLanguage.sentences_for

        def counting(self, sequence):
            encrypted.append(self.sensor)
            return original(self, sequence)

        monkeypatch.setattr(SensorLanguage, "sentences_for", counting)
        shorter = test.slice(0, test.num_samples // 2)
        small_framework.detect(shorter, full)
        assert encrypted  # a different log is re-encrypted

    def test_pre_stage_pickles_still_detect(
        self, small_framework, plant_dataset, tmp_path
    ):
        """Frameworks saved before the stage refactor lack _detect_stage."""
        from repro.pipeline import load_framework, save_framework

        path = save_framework(small_framework, tmp_path / "model.pkl")
        loaded = load_framework(path)
        loaded.__dict__.pop("_detect_stage", None)
        _, _, test = plant_dataset.split(10, 3)
        test = test.select(small_framework.graph.sensors)
        full = ScoreRange(0, 100, inclusive_high=True)
        np.testing.assert_array_equal(
            loaded.detect(test, full).anomaly_scores,
            small_framework.detect(test, full).anomaly_scores,
        )


class TestConfigPresets:
    def test_plant_preset(self):
        config = FrameworkConfig.plant()
        assert config.language.word_size == 10
        assert config.language.sentence_length == 20

    def test_backblaze_preset(self):
        config = FrameworkConfig.backblaze()
        assert config.language.word_size == 5
        assert config.popular_threshold < 100

    def test_invalid_threshold_strategy(self):
        with pytest.raises(ValueError):
            FrameworkConfig(threshold_strategy="nope")
