"""Tests for framework persistence."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graph import PairwiseRelationship
from repro.pipeline import (
    AnalyticsFramework,
    PairCheckpointStore,
    load_framework,
    save_framework,
)


def make_relationship(source: str, target: str, score: float) -> PairwiseRelationship:
    return PairwiseRelationship(
        source=source,
        target=target,
        model=None,
        score=score,
        dev_sentence_scores=np.asarray([score, score / 2]),
        runtime_seconds=0.01,
    )


class TestPersistence:
    def test_roundtrip_preserves_graph_and_detection(
        self, fitted_plant_framework, plant_dataset, tmp_path
    ):
        path = save_framework(fitted_plant_framework, tmp_path / "model.pkl")
        loaded = load_framework(path)
        assert loaded.graph.num_edges == fitted_plant_framework.graph.num_edges
        assert loaded.graph.scores() == fitted_plant_framework.graph.scores()
        _, _, test = plant_dataset.split(10, 3)
        original = fitted_plant_framework.detect(test)
        restored = loaded.detect(test)
        np.testing.assert_allclose(original.anomaly_scores, restored.anomaly_scores)

    def test_unfitted_framework_roundtrip(self, tmp_path):
        path = save_framework(AnalyticsFramework(), tmp_path / "empty.pkl")
        loaded = load_framework(path)
        assert loaded.graph is None

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "other.pkl"
        with path.open("wb") as handle:
            pickle.dump({"something": "else"}, handle)
        with pytest.raises(ValueError, match="not a saved analytics framework"):
            load_framework(path)

    def test_wrong_payload_type_rejected(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with path.open("wb") as handle:
            pickle.dump(
                {"format": "repro-analytics-framework-v1", "framework": 42}, handle
            )
        with pytest.raises(ValueError):
            load_framework(path)

    def test_creates_parent_directories(self, tmp_path):
        path = save_framework(AnalyticsFramework(), tmp_path / "a" / "b" / "m.pkl")
        assert path.exists()


class TestPairCheckpointStore:
    def test_missing_file_loads_empty(self, tmp_path):
        store = PairCheckpointStore(tmp_path / "none.ckpt")
        assert not store.exists()
        assert store.load() == {}
        assert len(store) == 0

    def test_append_then_load_roundtrip(self, tmp_path):
        store = PairCheckpointStore(tmp_path / "pairs.ckpt")
        store.append(make_relationship("a", "b", 83.0))
        store.append(make_relationship("b", "a", 61.5))
        rows = store.load()
        assert set(rows) == {("a", "b"), ("b", "a")}
        assert rows[("a", "b")].score == 83.0
        np.testing.assert_array_equal(
            rows[("b", "a")].dev_sentence_scores, np.asarray([61.5, 61.5 / 2])
        )

    def test_appends_survive_reopening(self, tmp_path):
        path = tmp_path / "pairs.ckpt"
        PairCheckpointStore(path).append(make_relationship("a", "b", 83.0))
        PairCheckpointStore(path).append(make_relationship("a", "c", 42.0))
        assert len(PairCheckpointStore(path)) == 2

    def test_truncated_trailing_record_is_discarded(self, tmp_path):
        path = tmp_path / "pairs.ckpt"
        store = PairCheckpointStore(path)
        store.append(make_relationship("a", "b", 83.0))
        store.append(make_relationship("b", "a", 61.5))
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # simulate a crash mid-write
        rows = store.load()
        assert ("a", "b") in rows  # intact prefix survives

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.ckpt"
        with path.open("wb") as handle:
            pickle.dump({"something": "else"}, handle)
        with pytest.raises(ValueError, match="not a pair checkpoint"):
            PairCheckpointStore(path).load()

    def test_non_pickle_file_rejected(self, tmp_path):
        """A plain-text file (e.g. a CSV passed to --checkpoint by
        mistake) must raise, not silently load as an empty journal."""
        path = tmp_path / "train.csv"
        path.write_text("sensor_a,sensor_b\nON,OFF\n")
        with pytest.raises(ValueError, match="not a pair checkpoint"):
            PairCheckpointStore(path).load()

    def test_append_never_writes_into_a_foreign_file(self, tmp_path):
        path = tmp_path / "train.csv"
        original = "sensor_a,sensor_b\nON,OFF\n"
        path.write_text(original)
        store = PairCheckpointStore(path)
        with pytest.raises(ValueError, match="not a pair checkpoint"):
            store.append(make_relationship("a", "b", 83.0))
        assert path.read_text() == original  # untouched

    def test_clear_refuses_to_delete_a_foreign_file(self, tmp_path):
        path = tmp_path / "train.csv"
        path.write_text("sensor_a,sensor_b\nON,OFF\n")
        with pytest.raises(ValueError, match="not a pair checkpoint"):
            PairCheckpointStore(path).clear()
        assert path.exists()

    def test_empty_file_treated_as_fresh_journal(self, tmp_path):
        path = tmp_path / "pairs.ckpt"
        path.touch()
        store = PairCheckpointStore(path)
        assert store.load() == {}
        store.append(make_relationship("a", "b", 83.0))
        assert ("a", "b") in store.load()

    def test_clear_removes_journal(self, tmp_path):
        store = PairCheckpointStore(tmp_path / "pairs.ckpt")
        store.append(make_relationship("a", "b", 83.0))
        assert store.exists()
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent

    def test_creates_parent_directories(self, tmp_path):
        store = PairCheckpointStore(tmp_path / "deep" / "dir" / "pairs.ckpt")
        store.append(make_relationship("a", "b", 83.0))
        assert store.exists()
