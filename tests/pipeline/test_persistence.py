"""Tests for framework persistence."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.pipeline import AnalyticsFramework, load_framework, save_framework


class TestPersistence:
    def test_roundtrip_preserves_graph_and_detection(
        self, fitted_plant_framework, plant_dataset, tmp_path
    ):
        path = save_framework(fitted_plant_framework, tmp_path / "model.pkl")
        loaded = load_framework(path)
        assert loaded.graph.num_edges == fitted_plant_framework.graph.num_edges
        assert loaded.graph.scores() == fitted_plant_framework.graph.scores()
        _, _, test = plant_dataset.split(10, 3)
        original = fitted_plant_framework.detect(test)
        restored = loaded.detect(test)
        np.testing.assert_allclose(original.anomaly_scores, restored.anomaly_scores)

    def test_unfitted_framework_roundtrip(self, tmp_path):
        path = save_framework(AnalyticsFramework(), tmp_path / "empty.pkl")
        loaded = load_framework(path)
        assert loaded.graph is None

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "other.pkl"
        with path.open("wb") as handle:
            pickle.dump({"something": "else"}, handle)
        with pytest.raises(ValueError, match="not a saved analytics framework"):
            load_framework(path)

    def test_wrong_payload_type_rejected(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with path.open("wb") as handle:
            pickle.dump(
                {"format": "repro-analytics-framework-v1", "framework": 42}, handle
            )
        with pytest.raises(ValueError):
            load_framework(path)

    def test_creates_parent_directories(self, tmp_path):
        path = save_framework(AnalyticsFramework(), tmp_path / "a" / "b" / "m.pkl")
        assert path.exists()
