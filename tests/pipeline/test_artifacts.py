"""Tests for the content-addressed artifact store and its fingerprints."""

from __future__ import annotations

import pickle

import pytest

from repro.lang import LanguageConfig, MultivariateEventLog
from repro.pipeline import ArtifactKey, ArtifactStore, PickleJournal
from repro.pipeline.artifacts import (
    combine_fingerprints,
    fingerprint_bytes,
    fingerprint_log,
    fingerprint_obj,
    fingerprint_sequence,
)


@pytest.fixture
def tiny_log():
    return MultivariateEventLog.from_mapping(
        {"sA": ["ON", "OFF", "ON", "ON"], "sB": ["1", "2", "1", "2"]}
    )


class TestFingerprints:
    def test_bytes_deterministic(self):
        assert fingerprint_bytes(b"abc") == fingerprint_bytes(b"abc")
        assert fingerprint_bytes(b"abc") != fingerprint_bytes(b"abd")

    def test_obj_canonical_key_order(self):
        assert fingerprint_obj({"a": 1, "b": 2}) == fingerprint_obj({"b": 2, "a": 1})

    def test_obj_dataclass_and_set(self):
        config = LanguageConfig(word_size=4, sentence_length=5)
        assert fingerprint_obj(config) == fingerprint_obj(
            LanguageConfig(word_size=4, sentence_length=5)
        )
        assert fingerprint_obj(config) != fingerprint_obj(
            LanguageConfig(word_size=5, sentence_length=5)
        )
        assert fingerprint_obj({"a", "b"}) == fingerprint_obj({"b", "a"})

    def test_obj_rejects_opaque_values(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint_obj(object())

    def test_sequence_covers_name_and_events(self, tiny_log):
        base = fingerprint_sequence(tiny_log["sA"])
        renamed = MultivariateEventLog.from_mapping({"sX": ["ON", "OFF", "ON", "ON"]})
        perturbed = MultivariateEventLog.from_mapping({"sA": ["ON", "OFF", "ON", "OFF"]})
        assert fingerprint_sequence(renamed["sX"]) != base
        assert fingerprint_sequence(perturbed["sA"]) != base
        assert fingerprint_sequence(tiny_log["sA"]) == base

    def test_sequence_event_boundaries_matter(self):
        joined = MultivariateEventLog.from_mapping({"s": ["AB", "C"]})
        split = MultivariateEventLog.from_mapping({"s": ["A", "BC"]})
        assert fingerprint_sequence(joined["s"]) != fingerprint_sequence(split["s"])

    def test_log_sensitive_to_any_sensor(self, tiny_log):
        base = fingerprint_log(tiny_log)
        other = MultivariateEventLog.from_mapping(
            {"sA": ["ON", "OFF", "ON", "ON"], "sB": ["1", "2", "1", "1"]}
        )
        assert fingerprint_log(other) != base

    def test_combine_order_and_boundaries(self):
        assert combine_fingerprints("a", "b") != combine_fingerprints("b", "a")
        assert combine_fingerprints("ab", "c") != combine_fingerprints("a", "bc")


class TestArtifactKey:
    def test_str(self):
        key = ArtifactKey("pair", "ab" * 16)
        assert str(key) == f"pair/{'ab' * 16}"

    @pytest.mark.parametrize("kind", ["", "Pair", "pair model", "-pair", "pair/x"])
    def test_bad_kind_rejected(self, kind):
        with pytest.raises(ValueError, match="kind"):
            ArtifactKey(kind, "ab" * 16)

    @pytest.mark.parametrize("digest", ["", "xyz", "ABCDEF" * 4, "ab" * 4])
    def test_bad_digest_rejected(self, digest):
        with pytest.raises(ValueError, match="digest"):
            ArtifactKey("pair", digest)


class TestArtifactStore:
    def key(self, kind="pair", token="x"):
        return ArtifactKey(kind, fingerprint_bytes(token.encode()))

    def test_save_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = self.key()
        store.save(key, {"score": 42.0})
        assert key in store
        assert store.load(key) == {"score": 42.0}

    def test_missing_key_raises_keyerror(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(KeyError):
            store.load(self.key())
        assert store.get(self.key(), "fallback") == "fallback"

    def test_corrupt_artifact_raises_and_get_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = self.key()
        path = store.save(key, "payload")
        path.write_bytes(b"not a pickle")
        with pytest.raises(ValueError, match="corrupt artifact"):
            store.load(key)
        assert store.get(key) is None

    def test_record_moved_between_keys_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        source = self.key(token="x")
        target = self.key(token="y")
        data = store.save(source, "payload").read_bytes()
        path = store.path_for(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
        with pytest.raises(ValueError, match="not the artifact"):
            store.load(target)

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = self.key()
        store.save(key, 1)
        assert store.delete(key)
        assert key not in store
        assert not store.delete(key)

    def test_keys_and_stats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pair_keys = [self.key("pair", t) for t in "abc"]
        for key in pair_keys:
            store.save(key, "p")
        store.save(self.key("encrypt", "z"), "e")
        assert set(store.keys("pair")) == set(pair_keys)
        assert len(list(store.keys())) == 4
        stats = store.stats()
        assert stats.num_artifacts == 4
        assert stats.total_bytes > 0
        assert {row["kind"]: row["artifacts"] for row in stats.as_rows()} == {
            "pair": 3,
            "encrypt": 1,
        }

    def test_empty_store_stats(self, tmp_path):
        stats = ArtifactStore(tmp_path / "absent").stats()
        assert stats.num_artifacts == 0 and stats.total_bytes == 0

    def test_gc_by_age(self, tmp_path):
        import os

        store = ArtifactStore(tmp_path)
        old, fresh = self.key(token="old"), self.key(token="fresh")
        old_path = store.save(old, 1)
        store.save(fresh, 2)
        past = old_path.stat().st_mtime - 10_000
        os.utime(old_path, (past, past))
        now = store.path_for(fresh).stat().st_mtime
        assert store.gc(max_age_seconds=5_000, now=now) == 1
        assert old not in store and fresh in store
        with pytest.raises(ValueError, match="non-negative"):
            store.gc(max_age_seconds=-1)

    def test_purge(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for token in "abc":
            store.save(self.key(token=token), token)
        assert store.purge() == 3
        assert store.stats().num_artifacts == 0


class TestPickleJournal:
    def test_roundtrip(self, tmp_path):
        journal = PickleJournal(tmp_path / "j.log", "tag-v1")
        assert not journal.exists()
        journal.append({"n": 1})
        journal.append({"n": 2})
        assert journal.exists()
        assert list(journal.records()) == [{"n": 1}, {"n": 2}]

    def test_truncated_tail_discarded(self, tmp_path):
        path = tmp_path / "j.log"
        journal = PickleJournal(path, "tag-v1")
        journal.append("first")
        journal.append("second")
        with path.open("ab") as handle:
            handle.write(pickle.dumps("third")[:4])
        assert list(journal.records()) == ["first", "second"]

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n")
        journal = PickleJournal(path, "tag-v1", description="pair checkpoint journal")
        with pytest.raises(ValueError, match="not a pair checkpoint journal"):
            list(journal.records())
        with pytest.raises(ValueError, match="not a pair checkpoint journal"):
            journal.clear()
        assert path.exists()

    def test_wrong_tag_rejected(self, tmp_path):
        path = tmp_path / "j.log"
        PickleJournal(path, "other-tag").append("x")
        with pytest.raises(ValueError, match="not a journal"):
            list(PickleJournal(path, "tag-v1").records())

    def test_clear_removes_own_journal(self, tmp_path):
        path = tmp_path / "j.log"
        journal = PickleJournal(path, "tag-v1")
        journal.append("x")
        journal.clear()
        assert not path.exists()
        journal.clear()  # idempotent on a missing file
