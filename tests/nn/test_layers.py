"""Tests for Linear, Embedding and Dropout layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_output_shape_and_affine(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(4, 3, rng=rng)
        x = nn.Tensor(rng.normal(size=(5, 4)))
        out = layer(x)
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out.data, x.data @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_weight_and_bias(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(1))
        out = layer(nn.Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 3.0))

    def test_seeded_init_is_deterministic(self):
        a = nn.Linear(6, 6, rng=np.random.default_rng(9))
        b = nn.Linear(6, 6, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values_match_table(self):
        emb = nn.Embedding(5, 3, rng=np.random.default_rng(1))
        out = emb(np.array([2, 2, 0]))
        np.testing.assert_array_equal(out.data[0], emb.weight.data[2])
        np.testing.assert_array_equal(out.data[2], emb.weight.data[0])

    def test_out_of_range_token_rejected(self):
        emb = nn.Embedding(5, 3)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_only_on_used_rows(self):
        emb = nn.Embedding(6, 2, rng=np.random.default_rng(2))
        emb(np.array([1, 3])).sum().backward()
        used = np.zeros((6, 2))
        used[[1, 3]] = 1.0
        np.testing.assert_allclose(emb.weight.grad, used)


class TestDropoutLayer:
    def test_respects_training_flag(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Tensor(np.ones((50, 50)))
        layer.eval()
        assert layer(x) is x
        layer.train()
        out = layer(x)
        assert (out.data == 0).any()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)
