"""Tests for optimisers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def quadratic_step(optimizer, param):
    """One step minimising ||param||²."""
    optimizer.zero_grad()
    loss = (param * param).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_minimises_quadratic(self):
        param = nn.Parameter(np.array([5.0, -3.0]))
        opt = nn.SGD([param], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, param)
        np.testing.assert_allclose(param.data, np.zeros(2), atol=1e-6)

    def test_momentum_accelerates(self):
        plain = nn.Parameter(np.array([10.0]))
        momentum = nn.Parameter(np.array([10.0]))
        opt_plain = nn.SGD([plain], lr=0.01)
        opt_momentum = nn.SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_step(opt_plain, plain)
            quadratic_step(opt_momentum, momentum)
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_skips_parameters_without_grad(self):
        param = nn.Parameter(np.ones(2))
        opt = nn.SGD([param], lr=0.1)
        opt.step()  # no grad accumulated
        np.testing.assert_array_equal(param.data, np.ones(2))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_minimises_quadratic(self):
        param = nn.Parameter(np.array([4.0, -2.0, 1.0]))
        opt = nn.Adam([param], lr=0.1)
        for _ in range(400):
            quadratic_step(opt, param)
        np.testing.assert_allclose(param.data, np.zeros(3), atol=1e-3)

    def test_bias_correction_first_step_magnitude(self):
        """First Adam update is ≈ lr regardless of gradient scale."""
        for scale in (0.01, 100.0):
            param = nn.Parameter(np.array([scale]))
            opt = nn.Adam([param], lr=0.5)
            opt.zero_grad()
            (param * param).sum().backward()
            before = param.data.copy()
            opt.step()
            np.testing.assert_allclose(abs(param.data - before), 0.5, rtol=1e-3)

    def test_reaches_lower_loss_than_sgd_on_illconditioned(self):
        rng = np.random.default_rng(0)
        scales = np.array([100.0, 1.0, 0.01])

        def run(optimizer_cls, **kwargs):
            param = nn.Parameter(np.ones(3))
            opt = optimizer_cls([param], **kwargs)
            for _ in range(100):
                opt.zero_grad()
                loss = (param * param * nn.Tensor(scales)).sum()
                loss.backward()
                opt.step()
            return float((param.data**2 * scales).sum())

        assert run(nn.Adam, lr=0.05) < run(nn.SGD, lr=0.001)


class TestClipGradNorm:
    def test_norm_reduced_to_max(self):
        param = nn.Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        returned = nn.clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(returned, 20.0)
        np.testing.assert_allclose(np.linalg.norm(param.grad), 1.0)

    def test_small_gradients_untouched(self):
        param = nn.Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        nn.clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])

    def test_direction_preserved(self):
        param = nn.Parameter(np.zeros(2))
        param.grad = np.array([3.0, 4.0])
        nn.clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, [0.6, 0.8])

    def test_invalid_max_norm(self):
        param = nn.Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            nn.clip_grad_norm([param], max_norm=0.0)
