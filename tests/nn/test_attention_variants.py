"""Tests for the three Luong attention score variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def make_inputs(batch=2, src=4, hidden=3, seed=0):
    rng = np.random.default_rng(seed)
    decoder = nn.Tensor(rng.normal(size=(batch, hidden)), requires_grad=True)
    encoder = nn.Tensor(rng.normal(size=(batch, src, hidden)))
    return decoder, encoder


class TestScoreVariants:
    @pytest.mark.parametrize("score", ["dot", "general", "concat"])
    def test_all_variants_produce_distributions(self, score):
        att = nn.LuongAttention(3, rng=np.random.default_rng(1), score=score)
        decoder, encoder = make_inputs(seed=1)
        out, weights = att(decoder, encoder)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(weights.data.sum(axis=1), np.ones(2))

    @pytest.mark.parametrize("score", ["dot", "general", "concat"])
    def test_gradients_flow_through_every_variant(self, score):
        att = nn.LuongAttention(3, rng=np.random.default_rng(2), score=score)
        decoder, encoder = make_inputs(seed=2)
        out, _ = att(decoder, encoder)
        out.sum().backward()
        assert decoder.grad is not None
        for param in att.parameters():
            assert param.grad is not None

    def test_dot_has_fewest_parameters(self):
        rng = np.random.default_rng(3)
        dot = nn.LuongAttention(4, rng=rng, score="dot")
        general = nn.LuongAttention(4, rng=rng, score="general")
        concat = nn.LuongAttention(4, rng=rng, score="concat")
        assert dot.num_parameters() < general.num_parameters()
        assert general.num_parameters() < concat.num_parameters()

    def test_dot_scores_are_plain_inner_products(self):
        att = nn.LuongAttention(3, rng=np.random.default_rng(4), score="dot")
        decoder, encoder = make_inputs(seed=4)
        scores = att._scores(decoder, encoder)
        manual = np.einsum("bh,bsh->bs", decoder.data, encoder.data)
        np.testing.assert_allclose(scores.data, manual, rtol=1e-12)

    def test_unknown_score_rejected(self):
        with pytest.raises(ValueError):
            nn.LuongAttention(4, score="multiplicative-ish")

    @pytest.mark.parametrize("score", ["dot", "concat"])
    def test_masking_works_for_every_variant(self, score):
        att = nn.LuongAttention(3, rng=np.random.default_rng(5), score=score)
        decoder, encoder = make_inputs(seed=5)
        mask = np.array([[1, 1, 0, 0], [1, 0, 0, 0]])
        _, weights = att(decoder, encoder, mask)
        np.testing.assert_allclose(weights.data[0, 2:], 0.0, atol=1e-9)
        np.testing.assert_allclose(weights.data[1, 0], 1.0)


class TestSeq2SeqIntegration:
    def test_gru_and_attention_variant_configs_train(self):
        """A GRU + dot-attention NMT model trains end to end."""
        from repro.lang import ParallelCorpus
        from repro.translation import NMTConfig, Seq2SeqTranslator

        sentences = [tuple(f"w{(i + j) % 3}" for j in range(3)) for i in range(9)]
        corpus = ParallelCorpus.from_sentences("a", "b", sentences, sentences)
        config = NMTConfig(
            embedding_size=8,
            hidden_size=10,
            num_layers=2,
            dropout=0.0,
            training_steps=150,
            batch_size=6,
            learning_rate=5e-3,
            seed=0,
            recurrent_unit="gru",
            attention_score="dot",
        )
        model = Seq2SeqTranslator(config).fit(corpus)
        assert model.loss_history[-1] < model.loss_history[0]
        assert model.score(corpus) > 50.0

    def test_invalid_unit_rejected(self):
        from repro.translation import NMTConfig

        with pytest.raises(ValueError):
            NMTConfig(recurrent_unit="transformer")
        with pytest.raises(ValueError):
            NMTConfig(attention_score="bahdanau")
