"""Tests for the Module/Parameter tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class Inner(nn.Module):
    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.ones((2, 2)))


class Outer(nn.Module):
    def __init__(self):
        super().__init__()
        self.inner = Inner()
        self.bias = nn.Parameter(np.zeros(3))
        self.blocks = [Inner(), Inner()]


class TestParameterTree:
    def test_named_parameters_walks_nested_and_lists(self):
        names = {name for name, _ in Outer().named_parameters()}
        assert names == {
            "inner.weight",
            "bias",
            "blocks.0.weight",
            "blocks.1.weight",
        }

    def test_num_parameters(self):
        assert Outer().num_parameters() == 4 + 3 + 4 + 4

    def test_zero_grad_clears_all(self):
        module = Outer()
        for param in module.parameters():
            param.grad = np.ones_like(param.data)
        module.zero_grad()
        assert all(param.grad is None for param in module.parameters())

    def test_train_eval_propagates(self):
        module = Outer()
        module.eval()
        assert not module.inner.training
        assert not module.blocks[1].training
        module.train()
        assert module.blocks[0].training


class TestStateDict:
    def test_roundtrip(self):
        source = Outer()
        for param in source.parameters():
            param.data += np.random.default_rng(0).normal(size=param.data.shape)
        target = Outer()
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        module = Outer()
        state = module.state_dict()
        state["bias"][:] = 99.0
        assert not (module.bias.data == 99.0).any()

    def test_mismatched_keys_rejected(self):
        module = Outer()
        state = module.state_dict()
        state.pop("bias")
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_mismatched_shape_rejected(self):
        module = Outer()
        state = module.state_dict()
        state["bias"] = np.zeros(99)
        with pytest.raises(ValueError):
            module.load_state_dict(state)
