"""Property-based gradient checks over composite tensor expressions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor


def numeric_grad(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        out[i] = (plus - minus) / (2 * eps)
    return grad


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 3),
    inner=st.integers(1, 3),
    cols=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_property_matmul_gradcheck(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(rows, inner))
    b_data = rng.normal(size=(inner, cols))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    ((a @ b).tanh()).sum().backward()

    def value():
        return (Tensor(a.data) @ Tensor(b.data)).tanh().sum().item()

    np.testing.assert_allclose(a.grad, numeric_grad(value, a.data), rtol=1e-4, atol=1e-7)
    np.testing.assert_allclose(b.grad, numeric_grad(value, b.data), rtol=1e-4, atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_property_composite_expression_gradcheck(size, seed):
    """A softmax-like normalisation composed from primitives."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(size,))
    x = Tensor(data.copy(), requires_grad=True)
    e = (x * 0.5).exp()
    normalised = e / e.sum()
    (normalised * Tensor(np.arange(size, dtype=float))).sum().backward()

    def value():
        e2 = (Tensor(x.data) * 0.5).exp()
        return ((e2 / e2.sum()) * Tensor(np.arange(size, dtype=float))).sum().item()

    np.testing.assert_allclose(x.grad, numeric_grad(value, x.data), rtol=1e-4, atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(1, 4),
    features=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_property_mean_centering_gradient_sums_to_zero(batch, features, seed):
    """d/dx Σ f(x - mean(x)) has zero column-sums for linear f."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(batch, features)), requires_grad=True)
    weights = Tensor(rng.normal(size=(batch, features)))
    centred = x - x.mean(axis=1, keepdims=True)
    (centred * weights).sum().backward()
    np.testing.assert_allclose(x.grad.sum(axis=1), np.zeros(batch), atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_detach_blocks_gradient(seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(4,)), requires_grad=True)
    through = (x * 2).sum()
    blocked = (x.detach() * 3).sum()
    (through + blocked).backward()
    np.testing.assert_allclose(x.grad, np.full(4, 2.0))
