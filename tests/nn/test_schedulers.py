"""Tests for learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def make_optimizer(lr=1.0):
    return nn.SGD([nn.Parameter(np.zeros(2))], lr=lr)


class TestExponentialDecay:
    def test_decay_per_step(self):
        opt = make_optimizer(1.0)
        sched = nn.ExponentialDecay(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            nn.ExponentialDecay(make_optimizer(), gamma=0.0)


class TestStepDecay:
    def test_decays_only_on_period(self):
        opt = make_optimizer(1.0)
        sched = nn.StepDecay(opt, period=3, gamma=0.1)
        for _ in range(2):
            sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            nn.StepDecay(make_optimizer(), period=0)


class TestReduceOnPlateau:
    def test_reduces_after_patience_without_improvement(self):
        opt = make_optimizer(1.0)
        sched = nn.ReduceOnPlateau(opt, patience=2, factor=0.5)
        sched.step(1.0)   # establishes best
        sched.step(1.0)   # stale 1
        sched.step(1.0)   # stale 2 -> reduce
        assert opt.lr == pytest.approx(0.5)

    def test_improvement_resets_counter(self):
        opt = make_optimizer(1.0)
        sched = nn.ReduceOnPlateau(opt, patience=2, factor=0.5)
        sched.step(1.0)
        sched.step(1.0)   # stale 1
        sched.step(0.5)   # improvement resets
        sched.step(0.5)   # stale 1
        assert opt.lr == 1.0

    def test_respects_min_lr(self):
        opt = make_optimizer(1e-6)
        sched = nn.ReduceOnPlateau(opt, patience=1, factor=0.5, min_lr=1e-6)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == pytest.approx(1e-6)
