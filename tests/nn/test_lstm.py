"""Tests for the LSTM cell and multi-layer stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


@pytest.fixture()
def lstm():
    return nn.LSTM(3, 5, num_layers=2, dropout=0.0, rng=np.random.default_rng(0))


class TestLSTMCell:
    def test_step_shapes(self):
        cell = nn.LSTMCell(3, 5, rng=np.random.default_rng(0))
        h, c = cell.zero_state(4)
        h2, c2 = cell(nn.Tensor(np.ones((4, 3))), h, c)
        assert h2.shape == (4, 5)
        assert c2.shape == (4, 5)

    def test_forget_bias_initialised_to_one(self):
        cell = nn.LSTMCell(3, 5)
        np.testing.assert_array_equal(cell.bias.data[5:10], np.ones(5))
        np.testing.assert_array_equal(cell.bias.data[:5], np.zeros(5))

    def test_state_is_bounded(self):
        cell = nn.LSTMCell(2, 4, rng=np.random.default_rng(1))
        h, c = cell.zero_state(1)
        for _ in range(50):
            h, c = cell(nn.Tensor(np.ones((1, 2)) * 10), h, c)
        assert np.abs(h.data).max() <= 1.0  # tanh-bounded output

    def test_gradients_reach_all_parameters(self):
        cell = nn.LSTMCell(2, 3, rng=np.random.default_rng(2))
        h, c = cell.zero_state(2)
        h2, _ = cell(nn.Tensor(np.ones((2, 2))), h, c)
        h2.sum().backward()
        for param in cell.parameters():
            assert param.grad is not None


class TestLSTMStack:
    def test_forward_shapes(self, lstm):
        out, (h, c) = lstm(nn.Tensor(np.ones((2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert len(h) == 2 and len(c) == 2
        assert h[0].shape == (2, 5)

    def test_step_equals_unrolled_forward(self, lstm):
        lstm.eval()
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(2, 4, 3))
        full_out, _ = lstm(nn.Tensor(inputs))
        state = lstm.zero_state(2)
        for t in range(4):
            step_out, state = lstm.step(nn.Tensor(inputs[:, t]), state)
            np.testing.assert_allclose(step_out.data, full_out.data[:, t], rtol=1e-10)

    def test_initial_state_is_used(self, lstm):
        lstm.eval()
        inputs = nn.Tensor(np.ones((1, 2, 3)))
        zero_out, _ = lstm(inputs)
        h0 = [nn.Tensor(np.ones((1, 5))) for _ in range(2)]
        c0 = [nn.Tensor(np.ones((1, 5))) for _ in range(2)]
        seeded_out, _ = lstm(inputs, (h0, c0))
        assert not np.allclose(zero_out.data, seeded_out.data)

    def test_backward_through_time(self, lstm):
        out, _ = lstm(nn.Tensor(np.random.default_rng(4).normal(size=(2, 6, 3))))
        out.sum().backward()
        for param in lstm.parameters():
            assert param.grad is not None
            assert np.abs(param.grad).sum() > 0

    def test_gradcheck_small_lstm(self):
        """Full BPTT gradient vs numerical differentiation."""
        lstm = nn.LSTM(2, 3, num_layers=1, rng=np.random.default_rng(5))
        inputs = np.random.default_rng(6).normal(size=(1, 3, 2))

        def loss_value() -> float:
            out, _ = lstm(nn.Tensor(inputs))
            return out.sum().item()

        out, _ = lstm(nn.Tensor(inputs))
        out.sum().backward()
        param = lstm.cells[0].weight_h
        eps = 1e-6
        for index in [(0, 0), (1, 5), (2, 11)]:
            original = param.data[index]
            param.data[index] = original + eps
            plus = loss_value()
            param.data[index] = original - eps
            minus = loss_value()
            param.data[index] = original
            numeric = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(param.grad[index], numeric, rtol=1e-4, atol=1e-8)

    def test_dropout_only_in_training(self):
        lstm = nn.LSTM(3, 4, num_layers=2, dropout=0.5, rng=np.random.default_rng(7))
        inputs = nn.Tensor(np.ones((1, 5, 3)))
        lstm.eval()
        a, _ = lstm(inputs)
        b, _ = lstm(inputs)
        np.testing.assert_array_equal(a.data, b.data)  # deterministic in eval
        lstm.train()
        c, _ = lstm(inputs)
        d, _ = lstm(inputs)
        assert not np.allclose(c.data, d.data)  # stochastic in train

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            nn.LSTM(2, 2, num_layers=0)
