"""Tests for module save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import load_module, save_module


def make_model(seed: int) -> nn.LSTM:
    return nn.LSTM(3, 4, num_layers=2, rng=np.random.default_rng(seed))


class TestSerialization:
    def test_roundtrip_restores_outputs(self, tmp_path):
        source = make_model(0)
        path = save_module(source, tmp_path / "model")
        assert path.suffix == ".npz"
        target = make_model(99)  # different init
        load_module(target, path)
        source.eval(), target.eval()
        x = nn.Tensor(np.random.default_rng(1).normal(size=(2, 5, 3)))
        a, _ = source(x)
        b, _ = target(x)
        np.testing.assert_array_equal(a.data, b.data)

    def test_wrong_architecture_rejected(self, tmp_path):
        path = save_module(make_model(0), tmp_path / "model.npz")
        other = nn.LSTM(3, 5, num_layers=2)
        with pytest.raises((KeyError, ValueError)):
            load_module(other, path)

    def test_creates_parent_directories(self, tmp_path):
        path = save_module(make_model(0), tmp_path / "deep" / "nested" / "model")
        assert path.exists()
