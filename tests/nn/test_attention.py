"""Tests for Luong attention."""

from __future__ import annotations

import numpy as np

from repro import nn


def make_inputs(batch=3, src=5, hidden=4, seed=0):
    rng = np.random.default_rng(seed)
    decoder = nn.Tensor(rng.normal(size=(batch, hidden)), requires_grad=True)
    encoder = nn.Tensor(rng.normal(size=(batch, src, hidden)))
    return decoder, encoder


class TestLuongAttention:
    def test_output_shapes(self):
        att = nn.LuongAttention(4, rng=np.random.default_rng(0))
        decoder, encoder = make_inputs()
        out, weights = att(decoder, encoder)
        assert out.shape == (3, 4)
        assert weights.shape == (3, 5)

    def test_weights_are_a_distribution(self):
        att = nn.LuongAttention(4, rng=np.random.default_rng(1))
        decoder, encoder = make_inputs(seed=1)
        _, weights = att(decoder, encoder)
        assert (weights.data >= 0).all()
        np.testing.assert_allclose(weights.data.sum(axis=1), np.ones(3))

    def test_mask_zeroes_padding_attention(self):
        att = nn.LuongAttention(4, rng=np.random.default_rng(2))
        decoder, encoder = make_inputs(seed=2)
        mask = np.array([[1, 1, 0, 0, 0], [1, 1, 1, 1, 1], [1, 0, 0, 0, 0]])
        _, weights = att(decoder, encoder, mask)
        np.testing.assert_allclose(weights.data[0, 2:], np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(weights.data[2, 1:], np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(weights.data[2, 0], 1.0)

    def test_attends_to_matching_position(self):
        """With identity scoring, attention concentrates on the encoder
        position most similar to the decoder state."""
        att = nn.LuongAttention(3, rng=np.random.default_rng(3))
        att.score_layer.weight.data = np.eye(3)
        encoder = nn.Tensor(np.stack([np.eye(3) * 10])[..., :3])  # (1, 3, 3)
        decoder = nn.Tensor(np.array([[10.0, 0.0, 0.0]]))
        _, weights = att(decoder, encoder)
        assert weights.data[0].argmax() == 0

    def test_gradients_flow(self):
        att = nn.LuongAttention(4, rng=np.random.default_rng(4))
        decoder, encoder = make_inputs(seed=4)
        out, _ = att(decoder, encoder)
        out.sum().backward()
        assert decoder.grad is not None
        for param in att.parameters():
            assert param.grad is not None
