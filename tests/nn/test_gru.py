"""Tests for the GRU cell and stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


@pytest.fixture()
def gru():
    return nn.GRU(3, 5, num_layers=2, dropout=0.0, rng=np.random.default_rng(0))


class TestGRUCell:
    def test_step_shape(self):
        cell = nn.GRUCell(3, 5, rng=np.random.default_rng(0))
        h = cell.zero_state(4)
        h2 = cell(nn.Tensor(np.ones((4, 3))), h)
        assert h2.shape == (4, 5)

    def test_output_bounded(self):
        cell = nn.GRUCell(2, 4, rng=np.random.default_rng(1))
        h = cell.zero_state(1)
        for _ in range(60):
            h = cell(nn.Tensor(np.ones((1, 2)) * 10), h)
        assert np.abs(h.data).max() <= 1.0

    def test_zero_update_gate_keeps_state(self):
        """With the update gate forced to one, the state never changes
        (GRU interpolation semantics: h' = z*h + (1-z)*candidate)."""
        cell = nn.GRUCell(2, 3, rng=np.random.default_rng(2))
        cell.gate_bias.data[3:] = 100.0  # update gate saturated at 1
        h = nn.Tensor(np.full((1, 3), 0.37))
        h2 = cell(nn.Tensor(np.ones((1, 2))), h)
        np.testing.assert_allclose(h2.data, h.data, atol=1e-6)

    def test_gradients_reach_all_parameters(self):
        cell = nn.GRUCell(2, 3, rng=np.random.default_rng(3))
        h = cell.zero_state(2)
        out = cell(nn.Tensor(np.ones((2, 2))), h)
        out.sum().backward()
        for param in cell.parameters():
            assert param.grad is not None


class TestGRUStack:
    def test_forward_shapes_match_lstm_contract(self, gru):
        out, (h, c) = gru(nn.Tensor(np.ones((2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert len(h) == 2 and len(c) == 2
        # The "cell" list mirrors the hidden list for interface parity.
        for h_layer, c_layer in zip(h, c):
            np.testing.assert_array_equal(h_layer.data, c_layer.data)

    def test_step_equals_unrolled_forward(self, gru):
        gru.eval()
        rng = np.random.default_rng(4)
        inputs = rng.normal(size=(2, 4, 3))
        full_out, _ = gru(nn.Tensor(inputs))
        state = gru.zero_state(2)
        for t in range(4):
            step_out, state = gru.step(nn.Tensor(inputs[:, t]), state)
            np.testing.assert_allclose(step_out.data, full_out.data[:, t], rtol=1e-10)

    def test_bptt_gradients_flow(self, gru):
        out, _ = gru(nn.Tensor(np.random.default_rng(5).normal(size=(2, 6, 3))))
        out.sum().backward()
        for param in gru.parameters():
            assert param.grad is not None
            assert np.abs(param.grad).sum() > 0

    def test_gradcheck_small_gru(self):
        gru = nn.GRU(2, 3, num_layers=1, rng=np.random.default_rng(6))
        inputs = np.random.default_rng(7).normal(size=(1, 3, 2))

        out, _ = gru(nn.Tensor(inputs))
        out.sum().backward()
        param = gru.cells[0].candidate_weight_h
        eps = 1e-6
        for index in [(0, 0), (2, 1)]:
            original = param.data[index]
            param.data[index] = original + eps
            plus = gru(nn.Tensor(inputs))[0].sum().item()
            param.data[index] = original - eps
            minus = gru(nn.Tensor(inputs))[0].sum().item()
            param.data[index] = original
            numeric = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(param.grad[index], numeric, rtol=1e-4, atol=1e-8)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            nn.GRU(2, 2, num_layers=0)
