"""Tests for softmax, log-softmax, cross entropy and dropout."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_stability_with_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        out = F.softmax(x)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data[0, :2], [0.5, 0.5])

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 4))
        weights = rng.normal(size=(3, 4))
        x = Tensor(data.copy(), requires_grad=True)
        (F.softmax(x) * Tensor(weights)).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(data)
        for i in range(data.shape[0]):
            for j in range(data.shape[1]):
                for sign in (1, -1):
                    data[i, j] += sign * eps
                    value = (F.softmax(Tensor(data)) * Tensor(weights)).sum().item()
                    numeric[i, j] += sign * value / (2 * eps)
                    data[i, j] -= sign * eps
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-7)

    def test_softmax_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(2).normal(size=(2, 5)))
        np.testing.assert_allclose(
            np.log(F.softmax(x).data), F.log_softmax(x).data, rtol=1e-10
        )


class TestCrossEntropy:
    def test_perfect_prediction_loss_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_classes(self):
        logits = Tensor(np.zeros((4, 7)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(loss.item(), np.log(7), rtol=1e-10)

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        F.cross_entropy(logits, targets).backward()
        probs = F.softmax(Tensor(logits.data)).data
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), targets] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3, rtol=1e-10)


class TestMaskedCrossEntropy:
    def test_mask_removes_padding_contribution(self):
        rng = np.random.default_rng(4)
        logits_data = rng.normal(size=(2, 3, 5))
        targets = np.array([[1, 2, 0], [3, 0, 0]])
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        loss = F.masked_cross_entropy(Tensor(logits_data), targets, mask)
        # Equivalent flat computation over unmasked positions only.
        flat_logits = Tensor(
            np.stack([logits_data[0, 0], logits_data[0, 1], logits_data[1, 0]])
        )
        expected = F.cross_entropy(flat_logits, np.array([1, 2, 3])).item()
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-10)

    def test_padding_positions_get_zero_gradient(self):
        logits = Tensor(np.random.default_rng(5).normal(size=(1, 2, 4)), requires_grad=True)
        mask = np.array([[1.0, 0.0]])
        F.masked_cross_entropy(logits, np.array([[2, 0]]), mask).backward()
        np.testing.assert_allclose(logits.grad[0, 1], np.zeros(4))
        assert np.abs(logits.grad[0, 0]).sum() > 0

    def test_all_masked_raises(self):
        logits = Tensor(np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            F.masked_cross_entropy(logits, np.zeros((1, 2), dtype=int), np.zeros((1, 2)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_zero_rate_is_identity(self):
        x = Tensor(np.ones(5))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_inverted_scaling_preserves_expectation(self):
        rng = np.random.default_rng(6)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, np.full_like(kept, 1.0 / 0.7))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True, rng=np.random.default_rng(0))


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(1, 5),
    classes=st.integers(2, 8),
    seed=st.integers(0, 500),
)
def test_property_cross_entropy_nonnegative(batch, classes, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(batch, classes)))
    targets = rng.integers(0, classes, size=batch)
    assert F.cross_entropy(logits, targets).item() >= 0.0
