"""Autograd engine tests: every op's gradient is checked numerically."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn()
        flat[index] = original - eps
        minus = fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_unary(op, shape=(3, 4), positive=False, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x).sum()
    out.backward()
    numeric = numeric_gradient(lambda: op(Tensor(x.data)).sum().item(), x.data)
    np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-7)


class TestElementwiseGradients:
    def test_add(self):
        check_unary(lambda x: x + 2.5)

    def test_mul(self):
        check_unary(lambda x: x * 3.0)

    def test_neg_sub(self):
        check_unary(lambda x: (1.0 - x) - x)

    def test_div(self):
        check_unary(lambda x: x / 2.0, positive=True)

    def test_rdiv(self):
        check_unary(lambda x: 1.0 / x, positive=True)

    def test_pow(self):
        check_unary(lambda x: x**3)

    def test_exp(self):
        check_unary(lambda x: x.exp())

    def test_log(self):
        check_unary(lambda x: x.log(), positive=True)

    def test_tanh(self):
        check_unary(lambda x: x.tanh())

    def test_sigmoid(self):
        check_unary(lambda x: x.sigmoid())

    def test_relu(self):
        # Shift away from 0 to avoid the kink in the numeric check.
        check_unary(lambda x: (x + 5.0).relu())

    def test_chained_ops(self):
        check_unary(lambda x: ((x * 2).tanh() + x.sigmoid()).exp())


class TestBroadcasting:
    def test_add_broadcast_gradient_shapes(self):
        a = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_mul_broadcast_values(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([1.0, 2.0, 3.0], (2, 1)))
        np.testing.assert_allclose(b.grad, np.full(3, 2.0))

    def test_keepdims_broadcast(self):
        a = Tensor(np.random.default_rng(2).normal(size=(2, 3)), requires_grad=True)
        out = (a - a.mean(axis=1, keepdims=True)).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.zeros((2, 3)), atol=1e-12)


class TestMatmul:
    def test_matmul_gradients(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        na = numeric_gradient(lambda: (Tensor(a.data) @ Tensor(b.data)).sum().item(), a.data)
        nb = numeric_gradient(lambda: (Tensor(a.data) @ Tensor(b.data)).sum().item(), b.data)
        np.testing.assert_allclose(a.grad, na, rtol=1e-5)
        np.testing.assert_allclose(b.grad, nb, rtol=1e-5)

    def test_batched_matmul(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(5, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = a @ b
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert a.grad.shape == (5, 3, 4)
        assert b.grad.shape == (4, 2)


class TestShaping:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        x.reshape(4, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_transpose_gradient(self):
        x = Tensor(np.random.default_rng(5).normal(size=(2, 3)), requires_grad=True)
        (x.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.zeros((4, 3)), requires_grad=True)
        x[1:3, :].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3, :] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_concat_gradient_split(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_stack_gradient(self):
        parts = [Tensor(np.full((2,), float(i)), requires_grad=True) for i in range(3)]
        out = Tensor.stack(parts, axis=0)
        assert out.shape == (3, 2)
        out.sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, np.ones(2))

    def test_take_rows_accumulates_repeats(self):
        table = Tensor(np.eye(4), requires_grad=True)
        out = table.take_rows(np.array([1, 1, 2]))
        out.sum().backward()
        expected = np.zeros((4, 4))
        expected[1] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(table.grad, expected)


class TestReductions:
    def test_sum_axis_gradient(self):
        x = Tensor(np.random.default_rng(6).normal(size=(3, 4)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean_gradient(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))

    def test_max_gradient_ties_split(self):
        x = Tensor(np.array([[1.0, 2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 0.5, 0.5]])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_detached_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            x.detach().sum().backward()

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x.sum().backward()
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 2.0))

    def test_diamond_graph_accumulation(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3
        z = (y + x * x).sum()  # dz/dx = 3 + 2x = 7
        z.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (x * 2).sum()
        assert not out.requires_grad

    def test_no_grad_is_thread_local(self):
        """Regression: one thread's no_grad() inference must not
        disable gradient tracking for a model training concurrently on
        another thread (the parallel pair executor relies on this)."""
        import threading

        entered = threading.Event()
        release = threading.Event()
        seen: dict[str, bool] = {}

        def inference_thread():
            with no_grad():
                entered.set()
                release.wait(timeout=5)

        worker = threading.Thread(target=inference_thread)
        worker.start()
        try:
            assert entered.wait(timeout=5)
            x = Tensor(np.ones(3), requires_grad=True)
            out = (x * 2).sum()
            seen["requires_grad"] = out.requires_grad
        finally:
            release.set()
            worker.join(timeout=5)
        assert seen["requires_grad"]

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_property_tanh_gradient_matches_numeric(rows, cols, seed):
    """Gradcheck holds for arbitrary shapes and values (hypothesis)."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, cols))
    x = Tensor(data.copy(), requires_grad=True)
    (x.tanh() * x).sum().backward()
    numeric = numeric_gradient(lambda: (Tensor(x.data).tanh() * Tensor(x.data)).sum().item(), x.data)
    np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1000))
def test_property_softmax_style_normalisation(seed):
    """exp(x)/sum(exp(x)) built from primitives sums to one."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(5,)), requires_grad=True)
    e = x.exp()
    p = e / e.sum()
    assert abs(p.data.sum() - 1.0) < 1e-12
    p.log().sum().backward()
    assert x.grad is not None
